package control

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Action classifies a controller decision.
type Action string

const (
	// ActionDeployed records a reconfiguration that went live.
	ActionDeployed Action = "deployed"
	// ActionSkipped records a candidate that was evaluated and rejected
	// (cost gate, min-gain threshold, or pending confirmation).
	ActionSkipped Action = "skipped"
	// ActionCooldown records a tick spent inside the post-migration
	// cooldown, where no candidate is even computed.
	ActionCooldown Action = "cooldown"
	// ActionRecovered records the re-deployment of a persisted
	// configuration at controller construction.
	ActionRecovered Action = "recovered"
	// ActionError records a failed measurement or deployment.
	ActionError Action = "error"
	// ActionFailed records a confirmed server failure reported by the
	// fault-tolerance subsystem; optimization pauses until the matching
	// recovery entry.
	ActionFailed Action = "failed"
	// ActionPaused records a tick skipped because a failure recovery is
	// in progress: the statistics window straddles the failure and any
	// candidate computed from it would chase a topology that no longer
	// exists.
	ActionPaused Action = "paused"
	// ActionPromoted records a hot key promoted to split (2-choice
	// replicated) routing by the hot-key splitter.
	ActionPromoted Action = "promoted"
	// ActionDemoted records a cooled-down key demoted back to
	// single-owner routing, its partials merged into the owner.
	ActionDemoted Action = "demoted"
	// ActionScaled records an elastic-scaling operation: servers added
	// to or removed from the cluster, with a minimal-movement
	// repartition migrating the affected keys.
	ActionScaled Action = "scaled"
	// ActionRetuned records the adaptive flush tuner changing the
	// transport's batching policy (flush bytes / flush interval) in
	// response to sustained in-flight pressure or idleness.
	ActionRetuned Action = "retuned"
	// ActionFederated records a cross-cluster key migration approved by
	// the federation layer: the inter-cluster tuple transfers it saves
	// per period cleared the inter-cluster cost gate (100× a same-rack
	// move by default). SavedTuplesPerPeriod and KeysToMigrate carry the
	// gate's two sides; intra-cluster rebalances stay ordinary
	// "deployed" entries.
	ActionFederated Action = "federated"
)

// Decision is one journal entry: what the controller did on one tick and
// the signal values that drove it. The journal is the control plane's
// flight recorder — every deploy AND every skip is recorded with enough
// context to reconstruct why.
type Decision struct {
	// Seq is the tick number the decision belongs to (0 for the
	// recovery entry).
	Seq int `json:"seq"`
	// Time is the decision time.
	Time time.Time `json:"time"`
	// Action is the outcome class.
	Action Action `json:"action"`
	// Reason is a human-readable explanation.
	Reason string `json:"reason"`
	// Version is the configuration version live after this decision.
	Version uint64 `json:"version"`
	// Streak is the consecutive-worthwhile-candidate count after this
	// tick (hysteresis confirmation state).
	Streak int `json:"streak"`

	// CurrentLocality and CandidateLocality are the impact estimator's
	// scores for keeping vs deploying, over the tick's statistics
	// window.
	CurrentLocality   float64 `json:"current_locality"`
	CandidateLocality float64 `json:"candidate_locality"`
	// SavedTuplesPerPeriod is the estimated tuple transfers per window
	// the candidate would move off the network.
	SavedTuplesPerPeriod float64 `json:"saved_tuples_per_period"`
	// KeysToMigrate is the migration workload of the candidate.
	KeysToMigrate int `json:"keys_to_migrate"`

	// Signals is the engine snapshot the decision was made on.
	Signals Snapshot `json:"signals"`

	// Err carries the error text for ActionError entries.
	Err string `json:"error,omitempty"`
}

// Sink receives every journal entry as it is recorded; implementations
// must be safe for concurrent use.
type Sink interface {
	Append(Decision) error
}

// Journal is the controller's append-only decision log: a bounded
// in-memory ring for introspection plus an optional durable sink (e.g. a
// JSONL file). Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	buf     []Decision
	start   int
	n       int
	total   int
	sink    Sink
	sinkErr error
}

// NewJournal returns a journal retaining the last capacity decisions in
// memory and forwarding every decision to sink (nil for none).
func NewJournal(capacity int, sink Sink) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{buf: make([]Decision, capacity), sink: sink}
}

// Record appends one decision. Sink failures are retained (see SinkErr)
// but never block the control loop.
func (j *Journal) Record(d Decision) {
	j.mu.Lock()
	if j.n < len(j.buf) {
		j.buf[(j.start+j.n)%len(j.buf)] = d
		j.n++
	} else {
		j.buf[j.start] = d
		j.start = (j.start + 1) % len(j.buf)
	}
	j.total++
	sink := j.sink
	j.mu.Unlock()
	if sink != nil {
		if err := sink.Append(d); err != nil {
			j.mu.Lock()
			j.sinkErr = err
			j.mu.Unlock()
		}
	}
}

// All returns the retained decisions, oldest first.
func (j *Journal) All() []Decision {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Decision, 0, j.n)
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(j.start+i)%len(j.buf)])
	}
	return out
}

// Recent returns the last n retained decisions, oldest first (all of
// them when n <= 0 or n exceeds the retained count).
func (j *Journal) Recent(n int) []Decision {
	all := j.All()
	if n <= 0 || n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}

// Total returns the number of decisions ever recorded (>= len(All())).
func (j *Journal) Total() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// SinkErr returns the most recent sink failure, if any.
func (j *Journal) SinkErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinkErr
}

// JSONLSink writes each decision as one JSON line. Safe for concurrent
// use.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
	c  io.Closer
}

// NewJSONLSink writes decisions to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// OpenJSONLFile appends decisions to the file at path, creating it if
// needed.
func OpenJSONLFile(path string) (*JSONLSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("control: open journal: %w", err)
	}
	return &JSONLSink{w: f, c: f}, nil
}

// Append implements Sink.
func (s *JSONLSink) Append(d Decision) error {
	data, err := json.Marshal(d)
	if err != nil {
		return fmt.Errorf("control: encode decision: %w", err)
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(data); err != nil {
		return fmt.Errorf("control: write journal: %w", err)
	}
	return nil
}

// Close closes the underlying file when the sink owns one.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c == nil {
		return nil
	}
	err := s.c.Close()
	s.c = nil
	return err
}
