package control

import (
	"testing"
	"time"
)

func TestManualClockAdvanceDeliversToEveryTicker(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	t1 := clock.NewTicker(time.Second)
	t2 := clock.NewTicker(time.Minute) // period is irrelevant for a manual clock

	got := make(chan time.Time, 2)
	for _, tk := range []Ticker{t1, t2} {
		go func(tk Ticker) { got <- <-tk.C() }(tk)
	}
	clock.Advance(3 * time.Second)
	want := time.Unix(3, 0)
	for i := 0; i < 2; i++ {
		if now := <-got; !now.Equal(want) {
			t.Fatalf("tick %d carried %v, want %v", i, now, want)
		}
	}
	if !clock.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", clock.Now(), want)
	}
}

func TestManualClockStoppedTickerDropsTicks(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	tk := clock.NewTicker(time.Second)
	tk.Stop()
	tk.Stop() // idempotent
	// No receiver anywhere: Advance must not block on the stopped ticker.
	done := make(chan struct{})
	go func() {
		clock.Advance(time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Advance blocked on a stopped ticker")
	}
}

func TestManualClockStopDuringAdvance(t *testing.T) {
	// A ticker stopped while an Advance is mid-delivery must unblock the
	// delivery rather than deadlock — the shutdown race of a controller
	// Stop concurrent with a clock Advance.
	clock := NewManualClock(time.Unix(0, 0))
	tk := clock.NewTicker(time.Second)
	done := make(chan struct{})
	go func() {
		clock.Advance(time.Second)
		close(done)
	}()
	tk.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Advance deadlocked against Stop")
	}
}

func TestSystemClockTicks(t *testing.T) {
	clock := SystemClock()
	if clock.Now().IsZero() {
		t.Fatal("system clock returned the zero time")
	}
	tk := clock.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("system ticker never fired")
	}
}
