package control

import (
	"sync"
	"time"
)

// Clock abstracts wall time so the controller can be driven by real
// tickers in production and by an injected clock in tests — every
// controller test is deterministic and sleep-free.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
}

// Ticker delivers periodic ticks until stopped.
type Ticker interface {
	// C returns the tick channel.
	C() <-chan time.Time
	// Stop releases the ticker's resources.
	Stop()
}

// SystemClock returns the wall clock backed by the time package.
func SystemClock() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) NewTicker(d time.Duration) Ticker {
	return &systemTicker{t: time.NewTicker(d)}
}

type systemTicker struct{ t *time.Ticker }

func (s *systemTicker) C() <-chan time.Time { return s.t.C }
func (s *systemTicker) Stop()               { s.t.Stop() }

// ManualClock is a test clock: time moves only when Advance is called,
// and each Advance delivers exactly one tick to every live ticker,
// blocking until the receiver has accepted it — after Advance returns,
// the tick is guaranteed to be in the consumer's hands. Safe for
// concurrent use.
type ManualClock struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*manualTicker
}

// NewManualClock returns a manual clock starting at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTicker implements Clock; the period is ignored — ticks fire on
// Advance.
func (c *ManualClock) NewTicker(time.Duration) Ticker {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &manualTicker{clock: c, ch: make(chan time.Time), quit: make(chan struct{})}
	c.tickers = append(c.tickers, t)
	return t
}

// Advance moves the clock by d and delivers one tick to every live
// ticker.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	tickers := append([]*manualTicker(nil), c.tickers...)
	c.mu.Unlock()
	for _, t := range tickers {
		t.deliver(now)
	}
}

type manualTicker struct {
	clock *ManualClock
	ch    chan time.Time
	quit  chan struct{}
	once  sync.Once
}

func (t *manualTicker) C() <-chan time.Time { return t.ch }

func (t *manualTicker) Stop() {
	t.once.Do(func() { close(t.quit) })
	c := t.clock
	c.mu.Lock()
	for i, other := range c.tickers {
		if other == t {
			c.tickers = append(c.tickers[:i], c.tickers[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// deliver blocks until the consumer receives the tick; a ticker stopped
// concurrently drops it instead of blocking forever.
func (t *manualTicker) deliver(now time.Time) {
	select {
	case t.ch <- now:
	case <-t.quit:
	}
}
