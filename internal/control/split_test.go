package control

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/topology"
)

// fakeSplitEngine records promote/demote calls without an engine.
type fakeSplitEngine struct {
	par      map[string]int
	splits   map[string][]int
	promoted []string
	demoted  []string
}

func newFakeSplitEngine(par map[string]int) *fakeSplitEngine {
	return &fakeSplitEngine{par: par, splits: map[string][]int{}}
}

func (f *fakeSplitEngine) CanSplit(op string) bool   { return f.par[op] >= 2 }
func (f *fakeSplitEngine) Parallelism(op string) int { return f.par[op] }
func (f *fakeSplitEngine) PromoteSplit(op, key string, d int) ([]int, error) {
	id := splitID(op, key)
	if _, ok := f.splits[id]; ok {
		return nil, fmt.Errorf("already split")
	}
	reps := make([]int, d)
	for i := range reps {
		reps[i] = i
	}
	f.splits[id] = reps
	f.promoted = append(f.promoted, id)
	return reps, nil
}
func (f *fakeSplitEngine) DemoteSplit(op, key string) error {
	id := splitID(op, key)
	if _, ok := f.splits[id]; !ok {
		return fmt.Errorf("not split")
	}
	delete(f.splits, id)
	f.demoted = append(f.demoted, id)
	return nil
}
func (f *fakeSplitEngine) SplitSnapshot() []engine.SplitKeyInfo { return nil }

// window builds a one-edge candidate whose Out-marginals give hotCount
// to "hot" and spread tailCount over 8 tail keys, with the fake engine's
// current split set attached.
func window(f *fakeSplitEngine, hotCount, tailCount uint64) *core.Candidate {
	pairs := []spacesaving.PairCounter{{In: "hot", Out: "hot", Count: hotCount}}
	for i := 0; i < 8; i++ {
		k := "t" + strconv.Itoa(i)
		pairs = append(pairs, spacesaving.PairCounter{In: k, Out: k, Count: tailCount / 8})
	}
	cand := &core.Candidate{Stats: []engine.PairStat{{FromOp: "A", ToOp: "B", Pairs: pairs}}}
	for id, reps := range f.splits {
		for i := 0; i < len(id); i++ {
			if id[i] == 0 {
				cand.Splits = append(cand.Splits, engine.SplitKeyInfo{Op: id[:i], Key: id[i+1:], Replicas: reps})
				break
			}
		}
	}
	return cand
}

// newSplitHarness is newHarness with hot-key splitting enabled in the
// engine.
func newSplitHarness(t *testing.T, parallelism int) *harness {
	t.Helper()
	topo, err := topology.NewBuilder("split").
		AddOperator(topology.Operator{Name: "A", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		AddOperator(topology.Operator{Name: "B", Parallelism: parallelism, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		Connect("A", "B", topology.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewRoundRobin(topo, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	policies, err := engine.NewPolicies(topo, place, engine.FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	src, err := engine.NewSourcePolicy(topo, place, topology.Fields, engine.FieldsTable)
	if err != nil {
		t.Fatal(err)
	}
	live, err := engine.NewLive(engine.LiveConfig{
		Topology:       topo,
		Placement:      place,
		Policies:       policies,
		SourcePolicy:   src,
		SourceKeyField: 0,
		SketchCapacity: 4096,
		KeySplitting:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(live.Stop)
	mgr, err := core.NewManager(live, topo, place, core.ManagerOptions{
		Optimizer: core.OptimizerOptions{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{live: live, mgr: mgr, topo: topo, place: place}
}

// TestSplitterHysteresisNoFlapping drives the splitter through
// alternating and sustained windows: a key hot for a single window (or
// alternating hot/cold) must never promote with Confirm=2, a key hot for
// two consecutive windows promotes exactly once, and the promoted key
// demotes only after two consecutive cold windows.
func TestSplitterHysteresisNoFlapping(t *testing.T) {
	f := newFakeSplitEngine(map[string]int{"B": 4})
	s := newSplitter(f, SplitOptions{Enabled: true, Threshold: 1.5, Confirm: 2})
	now := time.Unix(1700000000, 0)
	seq := 0
	tick := func(hot, tail uint64) []Decision {
		seq++
		return s.run(window(f, hot, tail), now, seq, 1)
	}

	// 400 hot of 800 total, fair share 200, threshold 300: hot.
	// One hot window: streak 1 of 2, nothing happens.
	if ds := tick(400, 400); len(ds) != 0 || len(f.promoted) != 0 {
		t.Fatalf("promoted after one hot window: %v / %v", ds, f.promoted)
	}
	// Cold window resets the streak.
	if ds := tick(100, 700); len(ds) != 0 {
		t.Fatalf("transition on cold window: %v", ds)
	}
	// Alternating hot/cold: still nothing, ever.
	for i := 0; i < 4; i++ {
		tick(400, 400)
		tick(100, 700)
	}
	if len(f.promoted) != 0 {
		t.Fatalf("flapped into promotion under alternating windows: %v", f.promoted)
	}

	// Two consecutive hot windows: promoted exactly once.
	tick(400, 400)
	ds := tick(400, 400)
	if len(f.promoted) != 1 || f.promoted[0] != splitID("B", "hot") {
		t.Fatalf("promotions = %v, want exactly B/hot", f.promoted)
	}
	if len(ds) != 1 || ds[0].Action != ActionPromoted {
		t.Fatalf("decisions = %+v, want one ActionPromoted", ds)
	}
	// Staying hot keeps it split, no re-promotion.
	tick(400, 400)
	tick(400, 400)
	if len(f.promoted) != 1 {
		t.Fatalf("re-promoted an already split key: %v", f.promoted)
	}

	// Demotion threshold is DemoteFraction(0.5) * 300 = 150 of an 800
	// window. One cold window: no demote. Hot again: cold streak resets.
	tick(100, 700)
	tick(400, 400)
	tick(100, 700)
	if len(f.demoted) != 0 {
		t.Fatalf("demoted without two consecutive cold windows: %v", f.demoted)
	}
	// Two consecutive cold windows: demoted exactly once.
	tick(100, 700)
	ds = tick(100, 700)
	if len(f.demoted) != 1 {
		t.Fatalf("demotions = %v, want exactly one", f.demoted)
	}
	// The second cold tick carries the demote; nothing further happens.
	found := false
	for _, d := range ds {
		if d.Action == ActionDemoted {
			found = true
		}
	}
	if !found && len(ds) > 0 {
		t.Fatalf("unexpected decisions %+v", ds)
	}
	tick(100, 700)
	if len(f.demoted) != 1 || len(f.promoted) != 1 {
		t.Fatalf("extra transitions: promoted %v demoted %v", f.promoted, f.demoted)
	}
}

// TestSplitterVanishedKeyDemotes demotes a split key that stops showing
// up in the statistics window at all.
func TestSplitterVanishedKeyDemotes(t *testing.T) {
	f := newFakeSplitEngine(map[string]int{"B": 4})
	s := newSplitter(f, SplitOptions{Enabled: true, Confirm: 2})
	now := time.Unix(1700000000, 0)
	s.run(window(f, 400, 400), now, 1, 1)
	s.run(window(f, 400, 400), now, 2, 1)
	if len(f.promoted) != 1 {
		t.Fatalf("setup: promotions %v", f.promoted)
	}
	// Candidates whose stats no longer mention "hot" at all.
	s.run(window(f, 0, 800), now, 3, 1)
	s.run(window(f, 0, 800), now, 4, 1)
	if len(f.demoted) != 1 {
		t.Fatalf("vanished key not demoted: %v", f.demoted)
	}
}

// TestControllerSplitLifecycleNoLoss is the end-to-end control-plane
// cycle on a real engine: a skewed stream promotes the hot key through
// controller ticks, the key demotes after the workload cools, and the
// owner's count equals every tuple injected — partials merged back, zero
// loss, all with a manual clock and no sleeps.
func TestControllerSplitLifecycleNoLoss(t *testing.T) {
	h := newSplitHarness(t, 4)
	c := newTestController(t, h, Options{
		CostPerKey: 1e9, // never deploy; this test isolates the splitter
		Split:      SplitOptions{Enabled: true, Threshold: 1.5, Confirm: 2, Replicas: 2},
	})
	c.AttachSplitEngine(h.live)

	hotTotal := uint64(0)
	injectSkewed := func(hotShare int) {
		for i := 0; i < 800; i++ {
			k := "t" + strconv.Itoa(i%16)
			if i%100 < hotShare {
				k = "hot"
				hotTotal++
			}
			if err := h.live.Inject(topology.Tuple{Values: []string{k, k}}); err != nil {
				t.Fatal(err)
			}
		}
		h.live.Drain()
	}

	// Two hot windows (40% of traffic on one key of 4 instances).
	injectSkewed(40)
	c.Tick()
	if got := c.Status().Promotions; got != 0 {
		t.Fatalf("promoted after one window (Confirm=2): %d", got)
	}
	injectSkewed(40)
	c.Tick()
	st := c.Status()
	// The hot key is hot at both stateful ops, so both promote together.
	if st.Promotions != 2 || len(st.SplitKeys) != 2 {
		t.Fatalf("no promotion after two hot windows: %+v", st)
	}
	var promotedJournal bool
	for _, d := range c.Journal().Recent(10) {
		if d.Action == ActionPromoted {
			promotedJournal = true
		}
	}
	if !promotedJournal {
		t.Fatal("journal has no promoted entry")
	}

	// Split traffic flows through both replicas.
	injectSkewed(40)
	c.Tick()
	if st := c.Status(); st.Split.Routed == 0 {
		t.Fatalf("no split-routed tuples: %+v", st.Split)
	}

	// The workload cools: two cold windows demote.
	injectSkewed(0)
	c.Tick()
	injectSkewed(0)
	c.Tick()
	st = c.Status()
	if st.Demotions != 2 || len(st.SplitKeys) != 0 {
		t.Fatalf("no demotion after two cold windows: %+v", st)
	}

	// Zero loss: every hot tuple ever injected is counted exactly once,
	// merged into single-owner state on every split op.
	for _, op := range []string{"A", "B"} {
		var total uint64
		var holders int
		for i := 0; i < 4; i++ {
			var n uint64
			if err := h.live.ProcessorState(op, i, func(p topology.Processor) {
				n = p.(*topology.Counter).Count("hot")
			}); err != nil {
				t.Fatal(err)
			}
			if n > 0 {
				holders++
			}
			total += n
		}
		if total != hotTotal {
			t.Fatalf("%s holds %d for the hot key, want %d (tuple loss or double count)", op, total, hotTotal)
		}
		if holders != 1 {
			t.Fatalf("%s: hot key spread over %d instances after demote, want 1", op, holders)
		}
	}
	if lost := h.live.TuplesLost(); lost != 0 {
		t.Fatalf("lost %d tuples", lost)
	}
}
