// Federation: the thin layer that makes the control plane hierarchical.
//
// With a multi-cluster placement the controller stops deploying one
// global candidate and instead runs the existing measure→decide→migrate
// loop once per cluster: every tick the manager's federated candidate
// carves the global tiered partition into per-cluster local move sets,
// and each cluster's set passes the ordinary cost/min-gain/confirm
// gates independently, with its own streak and cooldown. The federation
// layer itself owns only the cross-cluster remainder — the keys the
// partitioner wants to move over the metered inter-cluster link — and
// approves them only when the inter-cluster tuple transfers they save
// per period amortize the migration at the placement's inter-cluster
// cost multiple (100× a same-rack hop by default). Approved parts merge
// into a single deployment; approved cross-cluster moves are
// additionally journaled as a "federated" decision.
package control

import (
	"fmt"
	"sort"
	"strings"

	"github.com/locastream/locastream/internal/core"
)

// FederationManager is the manager surface the federation layer drives;
// the App adapts *core.Manager under its reconfiguration lock.
type FederationManager interface {
	// FederatedCandidate computes a global tiered candidate split along
	// the cluster boundary (resetting the statistics window); cross
	// moves that cannot individually amortize costPerKey times the
	// inter-cluster multiple are pruned.
	FederatedCandidate(costPerKey float64) (*core.FederatedCandidate, error)
	// MergeFederated builds the deployable candidate from the approved
	// clusters and, when approveCross, the cross-cluster moves; nil
	// when nothing was approved.
	MergeFederated(fc *core.FederatedCandidate, approved map[int]bool, approveCross bool) *core.Candidate
	// DeployCandidate persists and rolls out a merged candidate.
	DeployCandidate(*core.Candidate) error
}

// FederationOptions tune the federation layer; it runs only when
// Enabled and a federation manager is attached (AttachFederation).
type FederationOptions struct {
	Enabled bool
	// Clusters is the placement's cluster count (informational, served
	// on /status).
	Clusters int
	// Confirm is the number of consecutive windows the cross-cluster
	// move set must clear the cost gate before it deploys (default 1).
	// Intra-cluster moves use the controller's ordinary Confirm.
	Confirm int
	// Cooldown is the number of ticks the federation layer holds off
	// after a cross-cluster deployment (default 0). Intra-cluster moves
	// use the controller's ordinary Cooldown, tracked per cluster.
	Cooldown int
}

func (o *FederationOptions) defaults() {
	if o.Confirm < 1 {
		o.Confirm = 1
	}
	if o.Cooldown < 0 {
		o.Cooldown = 0
	}
}

// ClusterLoopStatus is one cluster's local control-loop state.
type ClusterLoopStatus struct {
	Cluster      int `json:"cluster"`
	Deploys      int `json:"deploys"`
	Streak       int `json:"streak"`
	CooldownLeft int `json:"cooldown_left"`
}

// FederationStatus is the federation layer's public state, served as
// part of /status.
type FederationStatus struct {
	// Clusters is the placement's cluster count.
	Clusters int `json:"clusters"`
	// Local lists the per-cluster loops that have made at least one
	// decision, ordered by cluster id.
	Local []ClusterLoopStatus `json:"local,omitempty"`
	// Federated counts cross-cluster deployments (journaled as
	// "federated"); CrossKeysMoved is their cumulative key volume.
	Federated      int `json:"federated"`
	CrossKeysMoved int `json:"cross_keys_moved"`
	// CrossStreak/Confirm/CooldownLeft expose the cross-cluster gate's
	// hysteresis state.
	CrossStreak  int `json:"cross_streak"`
	Confirm      int `json:"confirm"`
	CooldownLeft int `json:"cooldown_left"`
	// CostMultiplier is the inter-cluster cost multiple the gate
	// charges (from the placement's tier costs; 100 by default).
	CostMultiplier float64 `json:"cost_multiplier"`
	// LastCrossKeys/LastCrossSaved describe the most recent candidate's
	// cross-cluster move set, whether or not it was approved.
	LastCrossKeys  int     `json:"last_cross_keys"`
	LastCrossSaved float64 `json:"last_cross_saved"`
}

// clusterLoop is one cluster's confirm/cooldown state.
type clusterLoop struct {
	deploys      int
	streak       int
	cooldownLeft int
}

// federator holds the federation layer's state; owned by the
// controller, mutated only under c.mu.
type federator struct {
	mgr  FederationManager
	opts FederationOptions

	local          map[int]*clusterLoop
	crossStreak    int
	crossCooldown  int
	federated      int
	crossKeysMoved int
	lastCrossKeys  int
	lastCrossSaved float64
	lastMult       float64
}

func newFederator(mgr FederationManager, opts FederationOptions) *federator {
	opts.defaults()
	return &federator{mgr: mgr, opts: opts, local: make(map[int]*clusterLoop)}
}

func (f *federator) loop(cluster int) *clusterLoop {
	l := f.local[cluster]
	if l == nil {
		l = &clusterLoop{}
		f.local[cluster] = l
	}
	return l
}

// AttachFederation connects the federation layer to the manager's
// federated candidate API. Without it (or with Options unset) the
// controller deploys global candidates exactly as before.
func (c *Controller) AttachFederation(mgr FederationManager, opts FederationOptions) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !opts.Enabled {
		return
	}
	c.fedr = newFederator(mgr, opts)
}

// federatedDecideLocked is the hierarchical replacement for the
// controller's global candidate block: per-cluster loops decide the
// local moves, the federation gate decides the cross-cluster ones, and
// the approved parts deploy as one merged candidate. It fills d, and
// returns the global candidate (for the splitter) plus any extra
// decisions to journal after d — the "federated" entry when
// cross-cluster moves went out.
func (c *Controller) federatedDecideLocked(d *Decision) (cand *core.Candidate, extra []Decision) {
	f := c.fedr
	fc, err := f.mgr.FederatedCandidate(c.opts.CostPerKey)
	if err != nil {
		c.errors++
		d.Action = ActionError
		d.Reason = "federated candidate computation failed"
		d.Err = err.Error()
		return nil, nil
	}
	d.CurrentLocality = fc.Global.Impact.CurrentLocality
	d.CandidateLocality = fc.Global.Impact.CandidateLocality
	d.SavedTuplesPerPeriod = fc.Global.Impact.SavedTuplesPerPeriod
	d.KeysToMigrate = fc.Global.Impact.KeysToMigrate
	f.lastCrossKeys = fc.Cross.KeysMoved
	f.lastCrossSaved = fc.Cross.SavedInterClusterPerPeriod
	f.lastMult = fc.Cross.CostMultiplier

	// Per-cluster loops: each cluster's local move set passes the
	// ordinary gates with its own streak and cooldown. Clusters without
	// local moves this window lose their streak — there is nothing for
	// them to confirm.
	proposed := make(map[int]bool, len(fc.Clusters))
	approved := make(map[int]bool, len(fc.Clusters))
	var approvedIDs []int
	for _, cc := range fc.Clusters {
		proposed[cc.Cluster] = true
		loop := f.loop(cc.Cluster)
		if loop.cooldownLeft > 0 {
			loop.cooldownLeft--
			continue
		}
		gain := cc.Impact.CandidateLocality - cc.Impact.CurrentLocality
		if !cc.Impact.Worthwhile(c.opts.CostPerKey) || gain < c.opts.MinGain {
			loop.streak = 0
			continue
		}
		loop.streak++
		if loop.streak >= c.opts.Confirm {
			approved[cc.Cluster] = true
			approvedIDs = append(approvedIDs, cc.Cluster)
		}
	}
	for id, loop := range f.local {
		if !proposed[id] && loop.cooldownLeft == 0 {
			loop.streak = 0
		}
	}
	sort.Ints(approvedIDs)

	// Federation gate: cross-cluster moves must save enough
	// inter-cluster tuple transfers to amortize shipping their state
	// over the metered link, at CostMultiplier times the ordinary
	// per-key cost — and confirm it for Confirm consecutive windows.
	approveCross := false
	switch {
	case f.crossCooldown > 0:
		f.crossCooldown--
	case fc.Cross.Worthwhile(c.opts.CostPerKey):
		f.crossStreak++
		approveCross = f.crossStreak >= f.opts.Confirm
	default:
		f.crossStreak = 0
	}

	merged := f.mgr.MergeFederated(fc, approved, approveCross)
	if merged == nil {
		c.skips++
		d.Action = ActionSkipped
		d.Reason = federationSkipReason(fc, f, c.opts.CostPerKey)
		d.Streak = f.crossStreak
		return fc.Global, nil
	}
	if err := f.mgr.DeployCandidate(merged); err != nil {
		c.errors++
		d.Action = ActionError
		d.Reason = "federated deployment failed"
		d.Err = err.Error()
		// The merge was not deployed; reset the approving loops so the
		// next window re-confirms against fresh statistics.
		for _, id := range approvedIDs {
			f.loop(id).streak = 0
		}
		f.crossStreak = 0
		return fc.Global, nil
	}

	c.deploys++
	c.version = merged.Plan.Version
	d.Action = ActionDeployed
	d.Version = merged.Plan.Version
	d.KeysToMigrate = merged.Impact.KeysToMigrate
	d.CandidateLocality = merged.Impact.CandidateLocality
	d.SavedTuplesPerPeriod = merged.Impact.SavedTuplesPerPeriod
	var parts []string
	for _, id := range approvedIDs {
		loop := f.loop(id)
		loop.deploys++
		loop.streak = 0
		loop.cooldownLeft = c.opts.Cooldown
		for _, cc := range fc.Clusters {
			if cc.Cluster == id {
				parts = append(parts, fmt.Sprintf("cluster %d: %d keys", id, cc.KeysMoved))
			}
		}
	}
	if approveCross {
		parts = append(parts, fmt.Sprintf("cross-cluster: %d keys", fc.Cross.KeysMoved))
	}
	d.Reason = fmt.Sprintf("deployed v%d federated (%s): locality %.3f → %.3f (est.)",
		merged.Plan.Version, strings.Join(parts, "; "),
		merged.Impact.CurrentLocality, merged.Impact.CandidateLocality)

	if approveCross {
		f.crossStreak = 0
		f.crossCooldown = f.opts.Cooldown
		f.federated++
		f.crossKeysMoved += fc.Cross.KeysMoved
		extra = append(extra, Decision{
			Seq:     d.Seq,
			Time:    d.Time,
			Action:  ActionFederated,
			Version: merged.Plan.Version,
			Reason: fmt.Sprintf(
				"federated: migrated %d keys across clusters; saves %.1f inter-cluster tuples/period, clearing the %.0f× cost gate (threshold %.1f)",
				fc.Cross.KeysMoved, fc.Cross.SavedInterClusterPerPeriod, fc.Cross.CostMultiplier,
				c.opts.CostPerKey*fc.Cross.CostMultiplier*float64(fc.Cross.KeysMoved)),
			CurrentLocality:      fc.Global.Impact.CurrentLocality,
			CandidateLocality:    merged.Impact.CandidateLocality,
			SavedTuplesPerPeriod: fc.Cross.SavedInterClusterPerPeriod,
			KeysToMigrate:        fc.Cross.KeysMoved,
			Signals:              d.Signals,
		})
	}
	d.Streak = f.crossStreak
	return fc.Global, extra
}

// federationSkipReason summarizes why nothing deployed this window.
func federationSkipReason(fc *core.FederatedCandidate, f *federator, costPerKey float64) string {
	if len(fc.Clusters) == 0 && fc.Cross.KeysMoved == 0 {
		return "federation: no cluster proposed a move"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "federation: %d cluster(s) with local moves pending gates", len(fc.Clusters))
	if fc.Cross.KeysMoved > 0 {
		if fc.Cross.Worthwhile(costPerKey) {
			fmt.Fprintf(&b, "; %d cross-cluster keys awaiting confirmation (%d/%d)",
				fc.Cross.KeysMoved, f.crossStreak, f.opts.Confirm)
		} else {
			fmt.Fprintf(&b,
				"; %d cross-cluster keys held: saving %.1f inter-cluster tuples/period does not clear the %.0f× gate (threshold %.1f)",
				fc.Cross.KeysMoved, fc.Cross.SavedInterClusterPerPeriod, fc.Cross.CostMultiplier,
				costPerKey*fc.Cross.CostMultiplier*float64(fc.Cross.KeysMoved))
		}
	}
	return b.String()
}

// statusLocked snapshots the federation layer's state; caller holds the
// controller's mutex.
func (f *federator) statusLocked() *FederationStatus {
	st := &FederationStatus{
		Clusters:       f.opts.Clusters,
		Federated:      f.federated,
		CrossKeysMoved: f.crossKeysMoved,
		CrossStreak:    f.crossStreak,
		Confirm:        f.opts.Confirm,
		CooldownLeft:   f.crossCooldown,
		CostMultiplier: f.lastMult,
		LastCrossKeys:  f.lastCrossKeys,
		LastCrossSaved: f.lastCrossSaved,
	}
	ids := make([]int, 0, len(f.local))
	for id := range f.local {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		loop := f.local[id]
		st.Local = append(st.Local, ClusterLoopStatus{
			Cluster:      id,
			Deploys:      loop.deploys,
			Streak:       loop.streak,
			CooldownLeft: loop.cooldownLeft,
		})
	}
	return st
}
