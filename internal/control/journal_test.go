package control

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(3, nil)
	for i := 1; i <= 5; i++ {
		j.Record(Decision{Seq: i, Action: ActionSkipped})
	}
	all := j.All()
	if len(all) != 3 || all[0].Seq != 3 || all[2].Seq != 5 {
		t.Fatalf("All() = %+v, want seqs 3..5", all)
	}
	if j.Total() != 5 {
		t.Fatalf("Total() = %d, want 5", j.Total())
	}
	if got := j.Recent(2); len(got) != 2 || got[0].Seq != 4 {
		t.Fatalf("Recent(2) = %+v", got)
	}
	if got := j.Recent(0); len(got) != 3 {
		t.Fatalf("Recent(0) = %+v, want everything retained", got)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	sink, err := OpenJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(8, sink)
	when := time.Unix(1700000000, 0).UTC()
	j.Record(Decision{Seq: 1, Time: when, Action: ActionDeployed, Version: 1,
		CandidateLocality: 1, KeysToMigrate: 7, Signals: Snapshot{Seq: 1, WindowTraffic: 42}})
	j.Record(Decision{Seq: 2, Time: when, Action: ActionSkipped, Reason: "not worthwhile"})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.SinkErr(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []Decision
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, d)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("journal file holds %d lines, want 2", len(lines))
	}
	if lines[0].Action != ActionDeployed || lines[0].KeysToMigrate != 7 ||
		lines[0].Signals.WindowTraffic != 42 || !lines[0].Time.Equal(when) {
		t.Fatalf("line 0 = %+v", lines[0])
	}
	if lines[1].Action != ActionSkipped || lines[1].Reason != "not worthwhile" {
		t.Fatalf("line 1 = %+v", lines[1])
	}
}

func TestJSONLSinkAppendsAcrossReopens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	for i := 0; i < 2; i++ {
		sink, err := OpenJSONLFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Append(Decision{Seq: i}); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, b := range data {
		if b == '\n' {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("file holds %d lines after reopen, want 2", count)
	}
}

type failingSink struct{ err error }

func (s failingSink) Append(Decision) error { return s.err }

func TestJournalRetainsSinkError(t *testing.T) {
	boom := errors.New("disk full")
	j := NewJournal(4, failingSink{err: boom})
	j.Record(Decision{Seq: 1, Action: ActionSkipped})
	if !errors.Is(j.SinkErr(), boom) {
		t.Fatalf("SinkErr() = %v, want %v", j.SinkErr(), boom)
	}
	// The in-memory ring still records despite the failing sink.
	if len(j.All()) != 1 {
		t.Fatalf("All() = %+v", j.All())
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	j := NewJournal(16, NewJSONLSink(discard{}))
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				j.Record(Decision{Seq: g*100 + i, Action: ActionSkipped,
					Reason: fmt.Sprintf("g%d", g)})
				j.All()
				j.Recent(3)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if j.Total() != 200 {
		t.Fatalf("Total() = %d, want 200", j.Total())
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
