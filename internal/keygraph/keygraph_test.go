package keygraph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/locastream/locastream/internal/spacesaving"
)

func vid(op, key string) VertexID { return VertexID{Op: op, Key: key} }

func TestEmptyGraph(t *testing.T) {
	g := New()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.TotalVertexWeight() != 0 || g.TotalEdgeWeight() != 0 {
		t.Fatal("empty graph has nonzero weight")
	}
	ids, ws, adj := g.CSR()
	if len(ids) != 0 || len(ws) != 0 || len(adj) != 0 {
		t.Fatal("empty CSR not empty")
	}
}

func TestAddPairAccumulates(t *testing.T) {
	g := New()
	g.AddPair(vid("A", "Asia"), vid("B", "#java"), 3)
	g.AddPair(vid("A", "Asia"), vid("B", "#java"), 2)
	g.AddPair(vid("A", "Asia"), vid("B", "#ruby"), 1)
	g.AddPair(vid("A", "Oceania"), vid("B", "#java"), 0) // ignored
	g.AddPair(vid("A", "x"), vid("A", "x"), 7)           // self pair ignored

	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices() = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges() = %d, want 2", g.NumEdges())
	}
	if w := g.EdgeWeight(vid("A", "Asia"), vid("B", "#java")); w != 5 {
		t.Fatalf("EdgeWeight = %d, want 5", w)
	}
	if w := g.VertexWeight(vid("A", "Asia")); w != 6 {
		t.Fatalf("VertexWeight(A:Asia) = %d, want 6", w)
	}
	if w := g.VertexWeight(vid("B", "#java")); w != 5 {
		t.Fatalf("VertexWeight(B:#java) = %d, want 5", w)
	}
}

func TestSameKeyDifferentOpsDistinct(t *testing.T) {
	g := New()
	g.AddPair(vid("A", "x"), vid("B", "x"), 4)
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices() = %d, want 2 (A:x and B:x)", g.NumVertices())
	}
}

func TestChainMergesSharedOperator(t *testing.T) {
	// A->B and B->C statistics share B's key vertices.
	g := New()
	g.AddPairs("A", "B", []spacesaving.PairCounter{{In: "a1", Out: "b1", Count: 10}}, 0)
	g.AddPairs("B", "C", []spacesaving.PairCounter{{In: "b1", Out: "c1", Count: 7}}, 0)
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices() = %d, want 3 (A:a1, B:b1, C:c1)", g.NumVertices())
	}
	if w := g.VertexWeight(vid("B", "b1")); w != 17 {
		t.Fatalf("VertexWeight(B:b1) = %d, want 17 (both pair sets)", w)
	}
}

func TestEdgesSortedByWeight(t *testing.T) {
	g := New()
	g.AddPair(vid("A", "a"), vid("B", "1"), 10)
	g.AddPair(vid("A", "b"), vid("B", "2"), 30)
	g.AddPair(vid("A", "c"), vid("B", "3"), 20)
	es := g.Edges()
	if es[0].Weight != 30 || es[1].Weight != 20 || es[2].Weight != 10 {
		t.Fatalf("Edges() = %+v, want descending weight", es)
	}
}

func TestAddPairsKeepsHeaviest(t *testing.T) {
	pairs := []spacesaving.PairCounter{
		{In: "a", Out: "x", Count: 5},
		{In: "b", Out: "y", Count: 50},
		{In: "c", Out: "z", Count: 20},
	}
	g := New()
	g.AddPairs("A", "B", pairs, 2)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges() = %d, want 2", g.NumEdges())
	}
	if g.EdgeWeight(vid("A", "a"), vid("B", "x")) != 0 {
		t.Fatal("lightest edge should have been dropped")
	}
	if g.EdgeWeight(vid("A", "b"), vid("B", "y")) != 50 {
		t.Fatal("heaviest edge missing")
	}
}

func TestCSRSymmetry(t *testing.T) {
	g := New()
	g.AddPair(vid("A", "a"), vid("B", "x"), 3)
	g.AddPair(vid("A", "a"), vid("B", "y"), 1)
	g.AddPair(vid("A", "b"), vid("B", "x"), 2)
	ids, weights, adj := g.CSR()
	if len(ids) != 4 || len(weights) != 4 {
		t.Fatalf("CSR sizes = %d/%d, want 4/4", len(ids), len(weights))
	}
	type key struct{ u, v int }
	seen := make(map[key]uint64)
	for u, list := range adj {
		for _, a := range list {
			seen[key{u, a.To}] = a.Weight
		}
	}
	for k, w := range seen {
		if seen[key{k.v, k.u}] != w {
			t.Fatalf("edge %v asymmetric", k)
		}
	}
	var deg int
	for _, list := range adj {
		deg += len(list)
	}
	if deg != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2*edges %d", deg, 2*g.NumEdges())
	}
}

func TestPropertyWeightsConsistent(t *testing.T) {
	// Property: total vertex weight is exactly twice total edge weight
	// (each pair contributes to exactly two vertices).
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		for i := 0; i < int(n); i++ {
			g.AddPair(
				vid("A", fmt.Sprintf("in%d", rng.Intn(10))),
				vid("B", fmt.Sprintf("out%d", rng.Intn(10))),
				uint64(rng.Intn(5)),
			)
		}
		return g.TotalVertexWeight() == 2*g.TotalEdgeWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
