// Package keygraph builds the vertex- and edge-weighted key graph of §3.3
// of Caneill et al. (Middleware'16).
//
// For a pair of consecutive stateful operators X and Y connected through
// fields groupings, the graph holds one vertex per key routed to X and
// one per key routed to Y; a vertex is weighted by the key's frequency
// and an edge (k, k') by the number of tuples that carried key k into X
// and then key k' into Y (Fig. 5 shows the resulting bipartite graph).
// Vertices are identified by (operator, key), so statistics from several
// consecutive operator pairs — a chain A→B→C or a general DAG — merge
// into a single graph, as the paper's conclusion anticipates.
//
// Partitioning this graph with a balance constraint yields the
// locality-aware routing tables.
package keygraph

import (
	"sort"

	"github.com/locastream/locastream/internal/spacesaving"
)

// VertexID identifies a key vertex: Op is the stateful operator whose
// input routing uses Key.
type VertexID struct {
	Op  string
	Key string
}

// Vertex is a key with its accumulated frequency weight.
type Vertex struct {
	ID     VertexID
	Weight uint64
}

// Edge is a co-occurrence between a key of one operator and a key of a
// downstream operator.
type Edge struct {
	From   VertexID
	To     VertexID
	Weight uint64
}

// Graph is a key graph. The zero value is not usable; call New.
type Graph struct {
	vertices map[VertexID]uint64
	edges    map[[2]VertexID]uint64
}

// New returns an empty key graph.
func New() *Graph {
	return &Graph{
		vertices: make(map[VertexID]uint64),
		edges:    make(map[[2]VertexID]uint64),
	}
}

// AddPairs folds SpaceSaving pair counters for the operator pair
// (fromOp, toOp) into the graph, keeping only the maxEdges heaviest pairs
// (maxEdges <= 0 keeps everything). Vertex weights are derived from the
// kept edges: the weight of a key is the sum of its incident edge
// weights, approximating its frequency over the monitored traffic — this
// mirrors the paper's bounded statistics collection (Fig. 12).
func (g *Graph) AddPairs(fromOp, toOp string, pairs []spacesaving.PairCounter, maxEdges int) {
	sorted := make([]spacesaving.PairCounter, len(pairs))
	copy(sorted, pairs)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Count != sorted[j].Count {
			return sorted[i].Count > sorted[j].Count
		}
		if sorted[i].In != sorted[j].In {
			return sorted[i].In < sorted[j].In
		}
		return sorted[i].Out < sorted[j].Out
	})
	if maxEdges > 0 && maxEdges < len(sorted) {
		sorted = sorted[:maxEdges]
	}
	for _, p := range sorted {
		g.AddPair(VertexID{Op: fromOp, Key: p.In}, VertexID{Op: toOp, Key: p.Out}, p.Count)
	}
}

// AddPair records weight co-occurrences between two key vertices,
// increasing the edge weight and both vertex weights. Self-pairs and zero
// weights are ignored.
func (g *Graph) AddPair(from, to VertexID, weight uint64) {
	if weight == 0 || from == to {
		return
	}
	g.vertices[from] += weight
	g.vertices[to] += weight
	g.edges[[2]VertexID{from, to}] += weight
}

// NumVertices returns the number of distinct vertices.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the number of distinct edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// VertexWeight returns the accumulated weight of the given vertex.
func (g *Graph) VertexWeight(id VertexID) uint64 { return g.vertices[id] }

// EdgeWeight returns the accumulated weight of the edge (from, to).
func (g *Graph) EdgeWeight(from, to VertexID) uint64 {
	return g.edges[[2]VertexID{from, to}]
}

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() uint64 {
	var total uint64
	for _, w := range g.vertices {
		total += w
	}
	return total
}

// TotalEdgeWeight returns the sum of all edge weights.
func (g *Graph) TotalEdgeWeight() uint64 {
	var total uint64
	for _, w := range g.edges {
		total += w
	}
	return total
}

// Vertices returns all vertices sorted by operator then key.
func (g *Graph) Vertices() []Vertex {
	out := make([]Vertex, 0, len(g.vertices))
	for id, w := range g.vertices {
		out = append(out, Vertex{ID: id, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.Op != out[j].ID.Op {
			return out[i].ID.Op < out[j].ID.Op
		}
		return out[i].ID.Key < out[j].ID.Key
	})
	return out
}

// Edges returns all edges sorted by descending weight, then vertex IDs.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for k, w := range g.edges {
		out = append(out, Edge{From: k[0], To: k[1], Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].From != out[j].From {
			return less(out[i].From, out[j].From)
		}
		return less(out[i].To, out[j].To)
	})
	return out
}

func less(a, b VertexID) bool {
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	return a.Key < b.Key
}

// CSR converts the graph to the compressed adjacency form consumed by the
// partitioner: vertex weights and symmetric adjacency lists. ids maps
// positions in the arrays back to vertex IDs.
func (g *Graph) CSR() (ids []VertexID, weights []uint64, adj [][]Adj) {
	vs := g.Vertices()
	ids = make([]VertexID, len(vs))
	weights = make([]uint64, len(vs))
	index := make(map[VertexID]int, len(vs))
	for i, v := range vs {
		ids[i] = v.ID
		weights[i] = v.Weight
		index[v.ID] = i
	}
	adj = make([][]Adj, len(vs))
	for _, e := range g.Edges() {
		u := index[e.From]
		v := index[e.To]
		adj[u] = append(adj[u], Adj{To: v, Weight: e.Weight})
		adj[v] = append(adj[v], Adj{To: u, Weight: e.Weight})
	}
	return ids, weights, adj
}

// Adj is one adjacency entry: the neighbour's index and the edge weight.
type Adj struct {
	To     int
	Weight uint64
}
