package checkpoint

import (
	"bufio"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/locastream/locastream/internal/engine"
)

func rec(op, key string, inst int, data string) engine.KeyState {
	var d []byte
	if data != "" {
		d = []byte(data)
	}
	return engine.KeyState{Op: op, Inst: inst, Key: key, Data: d}
}

// testStoreMerge exercises the Store contract shared by both
// implementations: incremental appends fold into a last-record-wins
// image, sorted by operator then key.
func testStoreMerge(t *testing.T, store Store) {
	t.Helper()
	if recs, err := store.Load(); err != nil || len(recs) != 0 {
		t.Fatalf("empty store: recs=%v err=%v", recs, err)
	}
	if err := store.Append([]engine.KeyState{
		rec("B", "k1", 1, "b1-old"),
		rec("A", "k2", 0, "a2"),
		rec("A", "k1", 0, "a1"),
	}); err != nil {
		t.Fatal(err)
	}
	// Second increment: k1/B changes, a new key appears, one key gets a
	// nil-data record (state observed but empty).
	if err := store.Append([]engine.KeyState{
		rec("B", "k1", 1, "b1-new"),
		rec("B", "k9", 1, ""),
	}); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []engine.KeyState{
		rec("A", "k1", 0, "a1"),
		rec("A", "k2", 0, "a2"),
		rec("B", "k1", 1, "b1-new"),
		rec("B", "k9", 1, ""),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged image = %+v, want %+v", got, want)
	}
}

func TestMemoryStoreMerge(t *testing.T) {
	testStoreMerge(t, &MemoryStore{})
}

func TestFileStoreMerge(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "ckpt.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	testStoreMerge(t, fs)
}

func splitRec(op, key string, inst int, data string, replicas ...int) engine.KeyState {
	r := rec(op, key, inst, data)
	r.Split = true
	r.Replicas = replicas
	return r
}

// testStoreSplitPartials exercises the split-key exception to
// last-record-wins: while a key is split the image retains one partial
// per replica instance, a new replica set prunes partials from the old
// epoch, and a post-demote (non-split) record collapses the key back to
// a single record.
func testStoreSplitPartials(t *testing.T, store Store) {
	t.Helper()
	if err := store.Append([]engine.KeyState{
		splitRec("B", "hot", 1, "p1", 1, 2),
		splitRec("B", "hot", 2, "p2", 1, 2),
		rec("B", "cold", 0, "c"),
	}); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []engine.KeyState{
		rec("B", "cold", 0, "c"),
		splitRec("B", "hot", 1, "p1", 1, 2),
		splitRec("B", "hot", 2, "p2", 1, 2),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("split image = %+v, want %+v", got, want)
	}

	// A new split epoch over replicas {1, 3}: instance 2's partial was
	// merged away at the old epoch's demotion and must not survive.
	if err := store.Append([]engine.KeyState{
		splitRec("B", "hot", 3, "p3", 1, 3),
	}); err != nil {
		t.Fatal(err)
	}
	got, err = store.Load()
	if err != nil {
		t.Fatal(err)
	}
	want = []engine.KeyState{
		rec("B", "cold", 0, "c"),
		splitRec("B", "hot", 1, "p1", 1, 2),
		splitRec("B", "hot", 3, "p3", 1, 3),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("image after epoch change = %+v, want %+v", got, want)
	}

	// Post-demote snapshot: the owner's full state supersedes every
	// partial.
	if err := store.Append([]engine.KeyState{rec("B", "hot", 1, "full")}); err != nil {
		t.Fatal(err)
	}
	got, err = store.Load()
	if err != nil {
		t.Fatal(err)
	}
	want = []engine.KeyState{
		rec("B", "cold", 0, "c"),
		rec("B", "hot", 1, "full"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("image after demote = %+v, want %+v", got, want)
	}
}

func TestMemoryStoreSplitPartials(t *testing.T) {
	testStoreSplitPartials(t, &MemoryStore{})
}

func TestFileStoreSplitPartials(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "ckpt.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	testStoreSplitPartials(t, fs)
}

// TestFileStoreSplitReopen verifies the split annotation survives a
// process restart: partials written before a crash reload as partials,
// not as a collapsed single record.
func TestFileStoreSplitReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append([]engine.KeyState{
		splitRec("B", "hot", 0, "p0", 0, 2),
		splitRec("B", "hot", 2, "p2", 0, 2),
	}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []engine.KeyState{
		splitRec("B", "hot", 0, "p0", 0, 2),
		splitRec("B", "hot", 2, "p2", 0, 2),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened split image = %+v, want %+v", got, want)
	}
}

// TestFileStoreReopen verifies the restart path: a store reopened on the
// same file recovers the image the previous process persisted.
func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append([]engine.KeyState{rec("A", "k1", 0, "v1")}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append([]engine.KeyState{rec("A", "k1", 0, "v2")}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if err := fs.Append(nil); err == nil {
		t.Fatal("Append after Close succeeded")
	} else if err := fs.Append([]engine.KeyState{rec("A", "x", 0, "v")}); err == nil {
		t.Fatal("Append after Close succeeded")
	}

	re, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Data) != "v2" {
		t.Fatalf("reopened image = %+v, want single A/k1=v2", got)
	}
}

// TestFileStoreTornTail verifies crash tolerance: a truncated final line
// (interrupted append) is skipped, every complete line still loads.
func TestFileStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append([]engine.KeyState{rec("A", "k1", 0, "good")}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"A","inst":0,"key":"k2","da`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "k1" {
		t.Fatalf("image after torn tail = %+v, want only the complete record", got)
	}
}

// TestFileStoreInteriorCorruption verifies that only a torn *final*
// line is tolerated: a corrupt line with complete records after it is
// interior damage — silently skipping it would reload a stale version
// of those keys — so Load must fail loudly instead.
func TestFileStoreInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append([]engine.KeyState{rec("A", "k1", 0, "v1")}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"op\":\"A\",\"inst\":0,\"key\":\"k2\",\"da\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// With the corrupt line last, Load still succeeds (torn tail).
	re, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := re.Load(); err != nil || len(got) != 1 {
		t.Fatalf("torn-tail load = %+v, %v; want the one complete record", got, err)
	}
	// A later complete append moves the corruption into the interior.
	if err := re.Append([]engine.KeyState{rec("A", "k1", 0, "v2")}); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Load(); err == nil {
		t.Fatal("Load silently skipped an interior corrupt line")
	} else if !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("interior corruption error = %v, want a corrupt-record error", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileStoreOversizedRecord verifies the scanner's line cap surfaces
// as a descriptive oversized-record error, not a bare bufio.ErrTooLong.
func TestFileStoreOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	huge := make([]byte, maxLineBytes+2)
	for i := range huge {
		huge[i] = 'x'
	}
	huge[len(huge)-1] = '\n'
	if err := os.WriteFile(path, huge, 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	_, err = fs.Load()
	if err == nil {
		t.Fatal("Load accepted a record beyond the line cap")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("oversized-record error = %v, want to wrap bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line cap") {
		t.Fatalf("oversized-record error = %v, want a descriptive line-cap message", err)
	}
}
