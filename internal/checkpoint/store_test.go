package checkpoint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/locastream/locastream/internal/engine"
)

func rec(op, key string, inst int, data string) engine.KeyState {
	var d []byte
	if data != "" {
		d = []byte(data)
	}
	return engine.KeyState{Op: op, Inst: inst, Key: key, Data: d}
}

// testStoreMerge exercises the Store contract shared by both
// implementations: incremental appends fold into a last-record-wins
// image, sorted by operator then key.
func testStoreMerge(t *testing.T, store Store) {
	t.Helper()
	if recs, err := store.Load(); err != nil || len(recs) != 0 {
		t.Fatalf("empty store: recs=%v err=%v", recs, err)
	}
	if err := store.Append([]engine.KeyState{
		rec("B", "k1", 1, "b1-old"),
		rec("A", "k2", 0, "a2"),
		rec("A", "k1", 0, "a1"),
	}); err != nil {
		t.Fatal(err)
	}
	// Second increment: k1/B changes, a new key appears, one key gets a
	// nil-data record (state observed but empty).
	if err := store.Append([]engine.KeyState{
		rec("B", "k1", 1, "b1-new"),
		rec("B", "k9", 1, ""),
	}); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []engine.KeyState{
		rec("A", "k1", 0, "a1"),
		rec("A", "k2", 0, "a2"),
		rec("B", "k1", 1, "b1-new"),
		rec("B", "k9", 1, ""),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged image = %+v, want %+v", got, want)
	}
}

func TestMemoryStoreMerge(t *testing.T) {
	testStoreMerge(t, &MemoryStore{})
}

func TestFileStoreMerge(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "ckpt.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	testStoreMerge(t, fs)
}

// TestFileStoreReopen verifies the restart path: a store reopened on the
// same file recovers the image the previous process persisted.
func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append([]engine.KeyState{rec("A", "k1", 0, "v1")}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append([]engine.KeyState{rec("A", "k1", 0, "v2")}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if err := fs.Append(nil); err == nil {
		t.Fatal("Append after Close succeeded")
	} else if err := fs.Append([]engine.KeyState{rec("A", "x", 0, "v")}); err == nil {
		t.Fatal("Append after Close succeeded")
	}

	re, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Data) != "v2" {
		t.Fatalf("reopened image = %+v, want single A/k1=v2", got)
	}
}

// TestFileStoreTornTail verifies crash tolerance: a truncated final line
// (interrupted append) is skipped, every complete line still loads.
func TestFileStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append([]engine.KeyState{rec("A", "k1", 0, "good")}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"A","inst":0,"key":"k2","da`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "k1" {
		t.Fatalf("image after torn tail = %+v, want only the complete record", got)
	}
}
