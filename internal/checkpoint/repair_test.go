package checkpoint

import (
	"testing"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/spacesaving"
	"github.com/locastream/locastream/internal/topology"
)

// repairPlace builds a 2-operator placement with one instance of each
// operator per server (instance i lands on server i under round-robin).
func repairPlace(t testing.TB, servers int) *cluster.Placement {
	t.Helper()
	topo, err := topology.NewBuilder("repair").
		AddOperator(topology.Operator{Name: "A", Parallelism: servers, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(0) }}).
		AddOperator(topology.Operator{Name: "B", Parallelism: servers, Stateful: true,
			New: func() topology.Processor { return topology.NewCounter(1) }}).
		Connect("A", "B", topology.Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	place, err := cluster.NewRoundRobin(topo, servers)
	if err != nil {
		t.Fatal(err)
	}
	return place
}

func aliveMask(servers int, dead ...int) []bool {
	alive := make([]bool, servers)
	for i := range alive {
		alive[i] = true
	}
	for _, d := range dead {
		alive[d] = false
	}
	return alive
}

// TestPlanRepairMinimalMovementHashFallback covers the no-statistics
// path: only the dead server's keys move, spread deterministically by
// hash over the survivors, and state records come from the checkpoint
// image where one exists.
func TestPlanRepairMinimalMovementHashFallback(t *testing.T) {
	const servers = 4
	place := repairPlace(t, servers)
	tables := map[string]*routing.Table{
		"A": {Assign: map[string]int{}},
		"B": {Assign: map[string]int{}},
	}
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	for i, k := range keys {
		tables["A"].Assign[k] = i % servers
		tables["B"].Assign[k] = i % servers
	}

	plan, err := PlanRepair(RepairInput{
		Place:  place,
		Alive:  aliveMask(servers, 3),
		Tables: tables,
		Checkpoint: []engine.KeyState{
			{Op: "A", Inst: 3, Key: "k3", Data: []byte("ck")},
		},
		StatefulOps: []string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Dead) != 1 || plan.Dead[0] != 3 {
		t.Fatalf("Dead = %v", plan.Dead)
	}
	// k3 and k7 lived on instance 3 for both operators: 4 moves total.
	if plan.MovedKeys != 4 {
		t.Fatalf("MovedKeys = %d, want 4", plan.MovedKeys)
	}
	survivors := []int{0, 1, 2}
	for _, op := range []string{"A", "B"} {
		for i, k := range keys {
			got := plan.Tables[op].Assign[k]
			if i%servers != 3 {
				if got != i%servers {
					t.Errorf("survivor key %s/%s moved: %d -> %d", op, k, i%servers, got)
				}
				continue
			}
			want := survivors[routing.HashKey(k, len(survivors))]
			if got != want {
				t.Errorf("orphan %s/%s assigned to %d, want hash choice %d", op, k, got, want)
			}
		}
	}
	// Exactly one record per moved stateful key; only A/k3 carries state.
	if len(plan.Records) != 4 || plan.RestoredKeys != 1 {
		t.Fatalf("Records = %d RestoredKeys = %d, want 4 and 1", len(plan.Records), plan.RestoredKeys)
	}
	for _, r := range plan.Records {
		if r.Inst != plan.Tables[r.Op].Assign[r.Key] {
			t.Errorf("record %s/%s targets inst %d, table says %d",
				r.Op, r.Key, r.Inst, plan.Tables[r.Op].Assign[r.Key])
		}
		if hasData := r.Data != nil; hasData != (r.Op == "A" && r.Key == "k3") {
			t.Errorf("record %s/%s data presence = %v", r.Op, r.Key, hasData)
		}
	}
	// Arm expectations mirror the records.
	armed := 0
	for op, byInst := range plan.Expects {
		for inst, ks := range byInst {
			armed += len(ks)
			for _, k := range ks {
				if plan.Tables[op].Assign[k] != inst {
					t.Errorf("armed %s/%s on inst %d, table says %d", op, k, inst, plan.Tables[op].Assign[k])
				}
			}
		}
	}
	if armed != 4 {
		t.Fatalf("armed %d keys, want 4", armed)
	}
}

// TestPlanRepairFollowsKeyGraph covers the locality-preserving path: an
// orphaned key pair heavily correlated with a pinned survivor key must
// land on that survivor's server, and correlated orphans must stay
// together.
func TestPlanRepairFollowsKeyGraph(t *testing.T) {
	const servers = 3
	place := repairPlace(t, servers)
	tables := map[string]*routing.Table{
		"A": {Assign: map[string]int{"hot": 2, "warm": 2, "anchor": 0}},
		"B": {Assign: map[string]int{"hot": 2, "warm": 2, "anchor": 0}},
	}
	stats := []engine.PairStat{{
		FromOp: "A", ToOp: "B",
		Pairs: []spacesaving.PairCounter{
			// The orphaned pair exchanges heavy traffic with each other
			// and with the anchor pinned on server 0.
			{In: "hot", Out: "hot", Count: 100},
			{In: "warm", Out: "warm", Count: 90},
			{In: "hot", Out: "anchor", Count: 80},
			{In: "warm", Out: "hot", Count: 70},
			{In: "anchor", Out: "anchor", Count: 60},
		},
	}}

	plan, err := PlanRepair(RepairInput{
		Place:       place,
		Alive:       aliveMask(servers, 2),
		Tables:      tables,
		Stats:       stats,
		StatefulOps: []string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.MovedKeys != 4 {
		t.Fatalf("MovedKeys = %d, want 4 (hot+warm on A and B)", plan.MovedKeys)
	}
	if got := plan.Tables["A"].Assign["anchor"]; got != 0 {
		t.Fatalf("pinned anchor moved to %d", got)
	}
	for _, key := range []string{"hot", "warm"} {
		a, b := plan.Tables["A"].Assign[key], plan.Tables["B"].Assign[key]
		if a == 2 || b == 2 {
			t.Fatalf("%s still assigned to the dead server (A=%d B=%d)", key, a, b)
		}
		if a != b {
			t.Errorf("pair %s split: A=%d B=%d", key, a, b)
		}
	}
	// The whole correlated cluster gravitates to the anchor's server.
	if got := plan.Tables["A"].Assign["hot"]; got != 0 {
		t.Errorf("hot assigned to %d, want the anchor's server 0", got)
	}
}

// TestPlanRepairCheckpointOnlyKey covers a key absent from the tables
// (hash-routed all its life) whose owner is resolved through OwnerOf: a
// dead owner orphans it, and its checkpointed state travels with it.
func TestPlanRepairCheckpointOnlyKey(t *testing.T) {
	const servers = 2
	place := repairPlace(t, servers)
	plan, err := PlanRepair(RepairInput{
		Place:  place,
		Alive:  aliveMask(servers, 1),
		Tables: map[string]*routing.Table{"A": {Assign: map[string]int{}}},
		Checkpoint: []engine.KeyState{
			{Op: "A", Inst: 1, Key: "ghost", Data: []byte("state")},
			{Op: "A", Inst: 0, Key: "safe", Data: []byte("state")},
		},
		OwnerOf: func(op, key string) (int, bool) {
			if key == "ghost" {
				return 1, true // dead
			}
			return 0, true // alive
		},
		StatefulOps: []string{"A"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.MovedKeys != 1 || plan.RestoredKeys != 1 {
		t.Fatalf("MovedKeys=%d RestoredKeys=%d, want 1 and 1", plan.MovedKeys, plan.RestoredKeys)
	}
	if got := plan.Tables["A"].Assign["ghost"]; got != 0 {
		t.Fatalf("ghost assigned to %d, want the only survivor 0", got)
	}
	if _, moved := plan.Tables["A"].Assign["safe"]; moved {
		t.Fatal("alive-owned key gained a table entry")
	}
}

func TestPlanRepairErrors(t *testing.T) {
	place := repairPlace(t, 2)
	if _, err := PlanRepair(RepairInput{}); err == nil {
		t.Fatal("nil placement accepted")
	}
	if _, err := PlanRepair(RepairInput{Place: place, Alive: []bool{true}}); err == nil {
		t.Fatal("short liveness vector accepted")
	}
	if _, err := PlanRepair(RepairInput{Place: place, Alive: []bool{false, false}}); err == nil {
		t.Fatal("zero survivors accepted")
	}
}

// TestPlanRepairSplitOwnerDied: the owner replica of a split key dies.
// The first surviving replica in original order becomes the owner (the
// same choice engine.PruneSplitReplicas makes), the table pin follows
// it, and the dead owner's checkpointed partial becomes a Merge record
// into the new owner — with no buffer arming, since the survivor's live
// partial stays valid throughout.
func TestPlanRepairSplitOwnerDied(t *testing.T) {
	const servers = 4
	place := repairPlace(t, servers)
	tables := map[string]*routing.Table{
		"B": {Assign: map[string]int{"hot": 3}},
	}
	plan, err := PlanRepair(RepairInput{
		Place:  place,
		Alive:  aliveMask(servers, 3),
		Tables: tables,
		Checkpoint: []engine.KeyState{
			{Op: "B", Inst: 1, Key: "hot", Data: []byte("p1"), Split: true, Replicas: []int{3, 1}},
			{Op: "B", Inst: 3, Key: "hot", Data: []byte("p3"), Split: true, Replicas: []int{3, 1}},
		},
		Splits:      []engine.SplitKeyInfo{{Op: "B", Key: "hot", Replicas: []int{3, 1}}},
		StatefulOps: []string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Tables["B"].Assign["hot"]; got != 1 {
		t.Fatalf("new owner = %d, want surviving replica 1", got)
	}
	if plan.MovedKeys != 1 {
		t.Fatalf("MovedKeys = %d, want 1", plan.MovedKeys)
	}
	if len(plan.Records) != 1 || plan.MergedPartials != 1 {
		t.Fatalf("Records = %+v MergedPartials = %d, want one merge record", plan.Records, plan.MergedPartials)
	}
	r := plan.Records[0]
	if !r.Merge || r.Inst != 1 || string(r.Data) != "p3" {
		t.Fatalf("merge record = %+v, want dead owner's partial into inst 1", r)
	}
	if len(plan.Expects) != 0 {
		t.Fatalf("split re-owning armed buffers: %+v", plan.Expects)
	}
}

// TestPlanRepairSplitReplicaDied: a non-owner replica dies; the owner
// keeps the key (no table movement), absorbing the dead replica's
// partial as a merge.
func TestPlanRepairSplitReplicaDied(t *testing.T) {
	const servers = 4
	place := repairPlace(t, servers)
	tables := map[string]*routing.Table{
		"B": {Assign: map[string]int{"hot": 0}},
	}
	plan, err := PlanRepair(RepairInput{
		Place:  place,
		Alive:  aliveMask(servers, 3),
		Tables: tables,
		Checkpoint: []engine.KeyState{
			{Op: "B", Inst: 0, Key: "hot", Data: []byte("p0"), Split: true, Replicas: []int{0, 3}},
			{Op: "B", Inst: 3, Key: "hot", Data: []byte("p3"), Split: true, Replicas: []int{0, 3}},
		},
		Splits:      []engine.SplitKeyInfo{{Op: "B", Key: "hot", Replicas: []int{0, 3}}},
		StatefulOps: []string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Tables["B"].Assign["hot"]; got != 0 {
		t.Fatalf("owner moved to %d, want 0", got)
	}
	if plan.MovedKeys != 0 {
		t.Fatalf("MovedKeys = %d, want 0", plan.MovedKeys)
	}
	if len(plan.Records) != 1 || !plan.Records[0].Merge ||
		plan.Records[0].Inst != 0 || string(plan.Records[0].Data) != "p3" {
		t.Fatalf("Records = %+v, want one merge of p3 into inst 0", plan.Records)
	}
}

// TestPlanRepairSplitAllReplicasDied: a split key that lost every
// replica is an ordinary orphan, except its state is scattered across
// partial records — the owner's partial restores as the base image and
// the rest fold in as merges, all at the adopting instance.
func TestPlanRepairSplitAllReplicasDied(t *testing.T) {
	const servers = 4
	place := repairPlace(t, servers)
	tables := map[string]*routing.Table{
		"B": {Assign: map[string]int{"hot": 3}},
	}
	plan, err := PlanRepair(RepairInput{
		Place:  place,
		Alive:  aliveMask(servers, 1, 3),
		Tables: tables,
		Checkpoint: []engine.KeyState{
			// Sorted by instance, so the non-owner partial comes first:
			// primaryRecord must still pick the owner's (inst 3).
			{Op: "B", Inst: 1, Key: "hot", Data: []byte("p1"), Split: true, Replicas: []int{3, 1}},
			{Op: "B", Inst: 3, Key: "hot", Data: []byte("p3"), Split: true, Replicas: []int{3, 1}},
		},
		Splits:      []engine.SplitKeyInfo{{Op: "B", Key: "hot", Replicas: []int{3, 1}}},
		StatefulOps: []string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := plan.Tables["B"].Assign["hot"]
	if s := place.ServerOf("B", inst); s != 0 && s != 2 {
		t.Fatalf("hot adopted by dead server %d (inst %d)", s, inst)
	}
	if len(plan.Records) != 2 {
		t.Fatalf("Records = %+v, want base + merge", plan.Records)
	}
	base, merge := plan.Records[0], plan.Records[1]
	if base.Merge || string(base.Data) != "p3" || base.Inst != inst {
		t.Fatalf("base record = %+v, want owner partial p3 at inst %d", base, inst)
	}
	if !merge.Merge || string(merge.Data) != "p1" || merge.Inst != inst {
		t.Fatalf("merge record = %+v, want partial p1 at inst %d", merge, inst)
	}
	if plan.RestoredKeys != 1 || plan.MergedPartials != 1 {
		t.Fatalf("RestoredKeys = %d MergedPartials = %d, want 1 and 1", plan.RestoredKeys, plan.MergedPartials)
	}
	if len(plan.Expects["B"][inst]) != 1 {
		t.Fatalf("orphaned split key not armed: %+v", plan.Expects)
	}
}

// TestPlanRepairNoOrphans: killing a server that owns nothing is a
// routing no-op.
func TestPlanRepairNoOrphans(t *testing.T) {
	place := repairPlace(t, 2)
	tables := map[string]*routing.Table{"A": {Assign: map[string]int{"k": 0}}}
	plan, err := PlanRepair(RepairInput{
		Place:       place,
		Alive:       aliveMask(2, 1),
		Tables:      tables,
		StatefulOps: []string{"A"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.MovedKeys != 0 || len(plan.Records) != 0 {
		t.Fatalf("no-orphan plan moved %d keys, %d records", plan.MovedKeys, len(plan.Records))
	}
	if plan.Tables["A"].Assign["k"] != 0 {
		t.Fatal("survivor assignment changed")
	}
}
