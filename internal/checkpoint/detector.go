package checkpoint

import (
	"time"
)

// Liveness is the failure detector's verdict on one server.
type Liveness int

const (
	// Alive: the last probe succeeded recently.
	Alive Liveness = iota
	// Suspected: probes have failed for at least SuspectAfter, but the
	// failure is not yet confirmed — transient network delay and a slow
	// peer look identical at this stage, so nothing is recovered yet.
	Suspected
	// Confirmed: probes have failed for ConfirmAfter; the server is
	// declared dead and recovery may begin. Confirmation is final — the
	// engine has no resurrect path, a replacement joins as a new server.
	Confirmed
)

// String implements fmt.Stringer.
func (l Liveness) String() string {
	switch l {
	case Alive:
		return "alive"
	case Suspected:
		return "suspected"
	case Confirmed:
		return "confirmed"
	default:
		return "unknown"
	}
}

// Pinger probes one server's liveness; *engine.Live implements it. With
// an in-memory engine the probe is synchronous and exact; with a TCP
// fabric it pushes a real heartbeat message and reports the send
// outcome, so detection lags the crash by however long the kernel takes
// to observe the closed connection — the lag the suspect threshold
// absorbs.
type Pinger interface {
	Ping(server int) bool
}

// DetectorOptions tune the two failure-detection thresholds.
type DetectorOptions struct {
	// SuspectAfter is how long probes must fail before a server is
	// suspected (default 2s).
	SuspectAfter time.Duration
	// ConfirmAfter is how long probes must fail before the failure is
	// confirmed and recovery starts (default 6s; raised to SuspectAfter
	// when configured below it).
	ConfirmAfter time.Duration
}

func (o *DetectorOptions) defaults() {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 2 * time.Second
	}
	if o.ConfirmAfter <= 0 {
		o.ConfirmAfter = 6 * time.Second
	}
	if o.ConfirmAfter < o.SuspectAfter {
		o.ConfirmAfter = o.SuspectAfter
	}
}

// Failure describes one confirmed failure.
type Failure struct {
	// Server is the dead server.
	Server int
	// DownSince is the time of the last successful probe (or of the
	// first probe round, for a server that never answered).
	DownSince time.Time
	// ConfirmedAt is the probe time that crossed ConfirmAfter.
	ConfirmedAt time.Time
}

// DetectionLatency is how long the detector took to confirm the failure
// after the server stopped answering.
func (f Failure) DetectionLatency() time.Duration {
	return f.ConfirmedAt.Sub(f.DownSince)
}

// Verdict is the outcome of one probe round.
type Verdict struct {
	// Failing lists every server whose probe failed this round,
	// whatever its escalation state — the earliest possible signal that
	// the membership is in doubt.
	Failing []int
	// Suspected lists servers that entered the suspected state this
	// round.
	Suspected []int
	// Confirmed lists failures confirmed this round.
	Confirmed []Failure
}

// Detector is the heartbeat failure detector: it probes every server on
// each externally driven round and escalates silent servers through
// suspect to confirmed. Time is injected (Probe takes now), so tests and
// the deterministic recovery suite run it on a manual clock with no
// sleeps. Not safe for concurrent use; the Supervisor serializes access.
type Detector struct {
	pinger  Pinger
	opts    DetectorOptions
	lastOK  []time.Time
	state   []Liveness
	started bool
}

// NewDetector builds a detector over servers servers.
func NewDetector(pinger Pinger, servers int, opts DetectorOptions) *Detector {
	opts.defaults()
	return &Detector{
		pinger: pinger,
		opts:   opts,
		lastOK: make([]time.Time, servers),
		state:  make([]Liveness, servers),
	}
}

// Probe runs one round at the given time: every not-yet-confirmed
// server is pinged, silent servers escalate once their silence crosses
// the configured thresholds, and a server that answers again before
// confirmation returns to Alive (a suspicion is a hypothesis, not a
// verdict). The first round initializes the silence baseline, so even a
// server that was dead before the detector started is confirmed
// ConfirmAfter later.
func (d *Detector) Probe(now time.Time) Verdict {
	if !d.started {
		d.started = true
		for i := range d.lastOK {
			d.lastOK[i] = now
		}
	}
	var v Verdict
	for s := range d.state {
		if d.state[s] == Confirmed {
			continue
		}
		if d.pinger.Ping(s) {
			d.lastOK[s] = now
			d.state[s] = Alive
			continue
		}
		v.Failing = append(v.Failing, s)
		silent := now.Sub(d.lastOK[s])
		switch {
		case silent >= d.opts.ConfirmAfter:
			// Both thresholds can be crossed within one round (clock
			// jump, long host pause). The suspected→confirmed escalation
			// must still emit both transitions exactly once: observers
			// (supervisor events, drills) key off the suspect edge.
			if d.state[s] != Suspected {
				v.Suspected = append(v.Suspected, s)
			}
			d.state[s] = Confirmed
			v.Confirmed = append(v.Confirmed, Failure{
				Server: s, DownSince: d.lastOK[s], ConfirmedAt: now,
			})
		case silent >= d.opts.SuspectAfter:
			if d.state[s] != Suspected {
				d.state[s] = Suspected
				v.Suspected = append(v.Suspected, s)
			}
		}
	}
	return v
}

// Liveness returns the current verdict for server s (Confirmed for
// out-of-range servers, which do not exist and certainly aren't alive).
func (d *Detector) Liveness(s int) Liveness {
	if s < 0 || s >= len(d.state) {
		return Confirmed
	}
	return d.state[s]
}

// States returns the per-server verdicts.
func (d *Detector) States() []Liveness {
	return append([]Liveness(nil), d.state...)
}
