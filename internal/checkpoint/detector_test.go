package checkpoint

import (
	"reflect"
	"testing"
	"time"
)

// fakePinger answers probes from a settable per-server liveness map.
type fakePinger struct{ down map[int]bool }

func (p *fakePinger) Ping(s int) bool { return !p.down[s] }

func TestDetectorEscalation(t *testing.T) {
	p := &fakePinger{down: map[int]bool{}}
	d := NewDetector(p, 3, DetectorOptions{SuspectAfter: 2 * time.Second, ConfirmAfter: 5 * time.Second})
	t0 := time.Unix(100, 0)

	if v := d.Probe(t0); len(v.Failing) != 0 || len(v.Suspected) != 0 || len(v.Confirmed) != 0 {
		t.Fatalf("healthy round reported %+v", v)
	}

	p.down[1] = true
	// 1s of silence: failing, not yet suspected.
	v := d.Probe(t0.Add(1 * time.Second))
	if !reflect.DeepEqual(v.Failing, []int{1}) || len(v.Suspected) != 0 {
		t.Fatalf("after 1s: %+v", v)
	}
	if d.Liveness(1) != Alive {
		t.Fatalf("liveness after 1s = %v, want alive", d.Liveness(1))
	}
	// 2s: suspected, exactly once.
	v = d.Probe(t0.Add(2 * time.Second))
	if !reflect.DeepEqual(v.Suspected, []int{1}) {
		t.Fatalf("after 2s: %+v", v)
	}
	if v = d.Probe(t0.Add(3 * time.Second)); len(v.Suspected) != 0 || len(v.Confirmed) != 0 {
		t.Fatalf("suspect re-announced: %+v", v)
	}
	if d.Liveness(1) != Suspected {
		t.Fatalf("liveness after 3s = %v, want suspected", d.Liveness(1))
	}
	// 5s: confirmed, with exact silence accounting.
	v = d.Probe(t0.Add(5 * time.Second))
	if len(v.Confirmed) != 1 {
		t.Fatalf("after 5s: %+v", v)
	}
	f := v.Confirmed[0]
	if f.Server != 1 || !f.DownSince.Equal(t0) || !f.ConfirmedAt.Equal(t0.Add(5*time.Second)) {
		t.Fatalf("failure = %+v", f)
	}
	if f.DetectionLatency() != 5*time.Second {
		t.Fatalf("latency = %v, want 5s", f.DetectionLatency())
	}
	// Confirmation is final: the server is not probed again.
	if v = d.Probe(t0.Add(6 * time.Second)); len(v.Failing) != 0 || len(v.Confirmed) != 0 {
		t.Fatalf("confirmed server re-reported: %+v", v)
	}
	if d.Liveness(1) != Confirmed {
		t.Fatalf("liveness = %v, want confirmed", d.Liveness(1))
	}
	if want := []Liveness{Alive, Confirmed, Alive}; !reflect.DeepEqual(d.States(), want) {
		t.Fatalf("states = %v, want %v", d.States(), want)
	}
}

// TestDetectorFlapRecovers verifies a suspicion is a hypothesis: a
// server that answers again before confirmation returns to Alive and
// its silence clock restarts.
func TestDetectorFlapRecovers(t *testing.T) {
	p := &fakePinger{down: map[int]bool{0: true}}
	d := NewDetector(p, 1, DetectorOptions{SuspectAfter: 2 * time.Second, ConfirmAfter: 6 * time.Second})
	t0 := time.Unix(200, 0)
	d.Probe(t0)
	if v := d.Probe(t0.Add(3 * time.Second)); !reflect.DeepEqual(v.Suspected, []int{0}) {
		t.Fatalf("not suspected: %+v", v)
	}
	p.down[0] = false
	d.Probe(t0.Add(4 * time.Second))
	if d.Liveness(0) != Alive {
		t.Fatalf("liveness after recovery = %v, want alive", d.Liveness(0))
	}
	// Silence restarts from the successful probe at +4s: at +9s only 5s
	// have passed (no confirmation); at +10s the 6s threshold is crossed.
	p.down[0] = true
	if v := d.Probe(t0.Add(9 * time.Second)); len(v.Confirmed) != 0 {
		t.Fatalf("confirmed too early: %+v", v)
	}
	v := d.Probe(t0.Add(10 * time.Second))
	if len(v.Confirmed) != 1 || !v.Confirmed[0].DownSince.Equal(t0.Add(4*time.Second)) {
		t.Fatalf("after flap: %+v", v)
	}
}

// TestDetectorDeadBeforeStart verifies the first-round baseline: a server
// that never answers is still confirmed ConfirmAfter after the first
// probe round.
func TestDetectorDeadBeforeStart(t *testing.T) {
	p := &fakePinger{down: map[int]bool{0: true}}
	d := NewDetector(p, 1, DetectorOptions{SuspectAfter: time.Second, ConfirmAfter: 3 * time.Second})
	t0 := time.Unix(300, 0)
	d.Probe(t0)
	if v := d.Probe(t0.Add(3 * time.Second)); len(v.Confirmed) != 1 {
		t.Fatalf("never-alive server not confirmed: %+v", v)
	}
}

func TestDetectorDefaultsAndBounds(t *testing.T) {
	var o DetectorOptions
	o.defaults()
	if o.SuspectAfter != 2*time.Second || o.ConfirmAfter != 6*time.Second {
		t.Fatalf("defaults = %+v", o)
	}
	o = DetectorOptions{SuspectAfter: 10 * time.Second, ConfirmAfter: time.Second}
	o.defaults()
	if o.ConfirmAfter != o.SuspectAfter {
		t.Fatalf("ConfirmAfter not raised to SuspectAfter: %+v", o)
	}
	d := NewDetector(&fakePinger{}, 2, DetectorOptions{})
	if d.Liveness(-1) != Confirmed || d.Liveness(2) != Confirmed {
		t.Fatal("out-of-range servers must read as confirmed-dead")
	}
	if s := Liveness(99).String(); s != "unknown" {
		t.Fatalf("String = %q", s)
	}
}
