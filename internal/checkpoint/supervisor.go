package checkpoint

import (
	"fmt"
	"sync"
	"time"

	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/routing"
)

// Phase labels the supervisor's lifecycle events.
type Phase string

const (
	// PhaseCheckpoint: an incremental checkpoint completed.
	PhaseCheckpoint Phase = "checkpoint"
	// PhaseSuspect: a server stopped answering probes.
	PhaseSuspect Phase = "suspect"
	// PhaseFailure: a failure was confirmed; recovery starts.
	PhaseFailure Phase = "failure"
	// PhaseArmed: adopting instances buffer tuples for the dead
	// server's keys; routing is about to switch.
	PhaseArmed Phase = "armed"
	// PhaseRerouted: repair tables are live; orphaned keys route to
	// their adopters.
	PhaseRerouted Phase = "rerouted"
	// PhaseRecovered: checkpointed state is restored and every buffered
	// tuple has been processed on top of it.
	PhaseRecovered Phase = "recovered"
)

// Event is one supervisor lifecycle notification, delivered
// synchronously from inside the supervisor (hooks must not call back
// into it).
type Event struct {
	// Phase classifies the event.
	Phase Phase
	// Time is the supervisor tick time the event belongs to.
	Time time.Time
	// Server is the failed server (-1 for checkpoint events).
	Server int
	// Keys is the record count of a checkpoint, or the reassigned key
	// count of a recovery phase.
	Keys int
	// Bytes is the checkpoint volume (checkpoint events only).
	Bytes uint64
	// Version is the repair configuration version (rerouted/recovered
	// events) or the checkpoint version the store stamped (checkpoint
	// events against a VersionedStore; 0 otherwise).
	Version uint64
}

// Manager is the configuration-bookkeeping surface recovery drives;
// *core.Manager implements it.
type Manager interface {
	// Tables returns the currently deployed routing tables.
	Tables() map[string]*routing.Table
	// ApplyRepair adopts and persists recovery tables, returning their
	// version.
	ApplyRepair(tables map[string]*routing.Table) (uint64, error)
}

// Options tune the supervisor.
type Options struct {
	// CheckpointEvery is the incremental checkpoint interval
	// (default 10s). A checkpoint is also taken at the first tick and
	// right before each recovery (the survivors' freshest state).
	CheckpointEvery time.Duration
	// ProbeEvery is the heartbeat cadence of the background loop
	// started by Start (default 1s). Tick-driven callers set their own
	// cadence by when they call Tick.
	ProbeEvery time.Duration
	// Detector sets the suspect/confirm thresholds.
	Detector DetectorOptions
	// Store persists checkpoints (default: in-memory).
	Store Store
	// Lock, when set, is held around the whole recovery sequence so it
	// serializes with planned reconfigurations (the App passes its
	// reconfiguration mutex).
	Lock sync.Locker
	// OnEvent, when set, receives every lifecycle event synchronously.
	OnEvent func(Event)
	// Meter, when set, receives the fault measurements (a private meter
	// is used otherwise; see Status).
	Meter *metrics.FaultMeter
	// Alpha and Seed tune the repair partitioning (zero Alpha selects
	// DefaultRepairAlpha; see RepairInput.Alpha).
	Alpha float64
	Seed  int64
	// Now injects the clock used by the background loop (default
	// time.Now). Tick ignores it — the caller's now is authoritative.
	Now func() time.Time
}

func (o *Options) defaults() {
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 10 * time.Second
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = time.Second
	}
	if o.Store == nil {
		o.Store = &MemoryStore{}
	}
	if o.Meter == nil {
		o.Meter = &metrics.FaultMeter{}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	o.Detector.defaults()
}

// RecoveryReport summarizes one completed recovery.
type RecoveryReport struct {
	// Server is the recovered-from dead server.
	Server int `json:"server"`
	// Version is the repair configuration version.
	Version uint64 `json:"version"`
	// MovedKeys counts reassigned keys (exactly the dead server's);
	// RestoredKeys the subset restored from a checkpoint — the
	// difference started fresh (changed after the last checkpoint and
	// lost, the bounded-loss guarantee).
	MovedKeys    int `json:"moved_keys"`
	RestoredKeys int `json:"restored_keys"`
	// MergedPartials counts split-key partials folded into a surviving
	// replica during the recovery.
	MergedPartials int `json:"merged_partials,omitempty"`
	// DetectionLatency is silence-to-confirmation; Duration the
	// arm-to-restored recovery wall time.
	DetectionLatency time.Duration `json:"detection_latency_ns"`
	Duration         time.Duration `json:"duration_ns"`
	// TuplesLost is the engine's cumulative loss counter after the
	// recovery.
	TuplesLost uint64 `json:"tuples_lost"`
}

// Status is the supervisor's public state, served by the control
// plane's /checkpoints endpoint.
type Status struct {
	// Liveness is the detector's per-server verdict.
	Liveness []string `json:"liveness"`
	// LastCheckpoint is the tick time of the latest checkpoint.
	LastCheckpoint time.Time `json:"last_checkpoint"`
	// Fault is the accumulated measurements.
	Fault metrics.FaultStats `json:"fault"`
	// Recoveries lists completed recoveries, oldest first.
	Recoveries []RecoveryReport `json:"recoveries,omitempty"`
	// LastError is the most recent background-tick failure, if any.
	LastError string `json:"last_error,omitempty"`
	// StateVersion is the checkpoint version the store stamped on the
	// latest snapshot (0 when the store is not versioned).
	StateVersion uint64 `json:"state_version,omitempty"`
	// Store is the checkpoint store's own measurements when it reports
	// them (see StoreStatsReporter).
	Store any `json:"store,omitempty"`
}

// Supervisor drives the fault-tolerance loop: on every tick it takes
// the incremental checkpoint when due, probes every server, and — on a
// confirmed failure — runs the recovery sequence (final survivor
// checkpoint, repair plan, arm buffers, switch routing, restore state).
// Time is injected through Tick, so the whole loop runs deterministically
// on a manual clock in tests; Start attaches a background ticker for
// production use. Safe for concurrent use.
type Supervisor struct {
	eng  *engine.Live
	mgr  Manager
	opts Options
	det  *Detector

	mu       sync.Mutex
	lastCkpt time.Time
	haveCkpt bool
	stats    []engine.PairStat
	reports  []RecoveryReport
	lastErr  error
	stateVer uint64 // latest version a VersionedStore stamped (0 otherwise)

	loopMu  sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	running bool
}

// NewSupervisor builds a supervisor over the live engine and the
// configuration manager.
func NewSupervisor(eng *engine.Live, mgr Manager, opts Options) (*Supervisor, error) {
	if eng == nil || mgr == nil {
		return nil, fmt.Errorf("checkpoint: supervisor needs an engine and a manager")
	}
	opts.defaults()
	return &Supervisor{
		eng:  eng,
		mgr:  mgr,
		opts: opts,
		det:  NewDetector(eng, eng.Placement().Servers(), opts.Detector),
	}, nil
}

func (s *Supervisor) emit(e Event) {
	if s.opts.OnEvent != nil {
		s.opts.OnEvent(e)
	}
}

// Tick runs one supervision round at the given time: probe all
// servers, checkpoint if due, recover confirmed failures. Deterministic
// given a deterministic engine — no internal clock reads drive
// decisions.
func (s *Supervisor) Tick(now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	v := s.det.Probe(now)
	for _, server := range v.Suspected {
		s.emit(Event{Phase: PhaseSuspect, Time: now, Server: server})
	}
	if !s.haveCkpt || now.Sub(s.lastCkpt) >= s.opts.CheckpointEvery {
		// While any probe is failing the membership is in doubt: a
		// statistics peek taken now would silently miss the sketches of
		// whatever just died, so the last trusted window is kept for
		// repair planning and only the state records are refreshed.
		if err := s.checkpointLocked(now, len(v.Failing) == 0); err != nil {
			firstErr = err
		}
	}
	for _, f := range v.Confirmed {
		if err := s.recoverLocked(f, now); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		s.lastErr = firstErr
	}
	return firstErr
}

// Checkpoint takes an incremental checkpoint immediately, regardless of
// the interval, and returns the number of records written.
func (s *Supervisor) Checkpoint(now time.Time) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.opts.Meter.Snapshot().CheckpointKeys
	if err := s.checkpointLocked(now, s.allProbedAlive()); err != nil {
		return 0, err
	}
	return int(s.opts.Meter.Snapshot().CheckpointKeys - before), nil
}

func (s *Supervisor) allProbedAlive() bool {
	for _, st := range s.det.States() {
		if st != Alive {
			return false
		}
	}
	return true
}

// checkpointLocked collects the dirty keys, persists them, and — when
// retainStats is set — retains the current key-pair statistics window,
// the key graph recovery partitions. The retained copy is taken with
// PeekPairStats (no sketch reset), so the optimizer's measurement
// window is untouched; it is the only reason the planner still knows a
// dead server's key correlations after the server (and its sketches)
// are gone — which is also why retention must be skipped the moment a
// server stops answering.
func (s *Supervisor) checkpointLocked(now time.Time, retainStats bool) error {
	start := time.Now()
	recs := s.eng.CheckpointDirty()
	if retainStats {
		s.stats = s.eng.PeekPairStats()
	}
	var bytes uint64
	if len(recs) > 0 {
		// A versioned store stamps the snapshot and gets its compaction
		// trigger; the plain Store interface stays the fallback.
		if vs, ok := s.opts.Store.(VersionedStore); ok {
			v, err := vs.AppendVersion(recs)
			if err != nil {
				return err
			}
			s.stateVer = v
			vs.MaybeCompact()
		} else if err := s.opts.Store.Append(recs); err != nil {
			return err
		}
		for _, r := range recs {
			bytes += uint64(len(r.Op) + len(r.Key) + len(r.Data))
		}
	}
	s.lastCkpt = now
	s.haveCkpt = true
	s.opts.Meter.RecordCheckpoint(len(recs), bytes, time.Since(start))
	s.emit(Event{Phase: PhaseCheckpoint, Time: now, Server: -1, Keys: len(recs), Bytes: bytes, Version: s.stateVer})
	return nil
}

// recoverLocked runs the recovery sequence for one confirmed failure,
// serialized against planned reconfiguration through opts.Lock:
//
//  1. a final incremental checkpoint captures the survivors' freshest
//     state (the dead server's dirty keys are unreachable — their
//     changes since the previous checkpoint are the bounded loss);
//  2. PlanRepair reassigns exactly the dead server's keys, pinning
//     every survivor key in place and re-partitioning the retained key
//     graph so orphans land next to their traffic partners;
//  3. RecoverArm makes every adopting instance buffer tuples for its
//     inherited keys (reusing the §3.4 migration buffers);
//  4. the repair tables are adopted by the manager (persisted, fresh
//     version) and installed into the engine's shared routing policies,
//     with an alive mask so even never-seen keys detour around the dead
//     instances deterministically;
//  5. RecoverRestore replays the checkpointed state into the adopters
//     and returns once every buffered tuple has been processed on top.
func (s *Supervisor) recoverLocked(f Failure, now time.Time) error {
	s.opts.Meter.RecordFailure(f.DetectionLatency())
	s.emit(Event{Phase: PhaseFailure, Time: now, Server: f.Server})
	if s.opts.Lock != nil {
		s.opts.Lock.Lock()
		defer s.opts.Lock.Unlock()
	}
	start := time.Now()
	if err := s.checkpointLocked(now, false); err != nil {
		return fmt.Errorf("checkpoint: pre-recovery checkpoint: %w", err)
	}
	image, err := s.opts.Store.Load()
	if err != nil {
		return fmt.Errorf("checkpoint: load recovery image: %w", err)
	}
	plan, err := PlanRepair(RepairInput{
		Place:       s.eng.Placement(),
		Alive:       s.eng.UsableServers(),
		Tables:      s.mgr.Tables(),
		Stats:       s.stats,
		Checkpoint:  image,
		Splits:      s.eng.SplitSnapshot(),
		OwnerOf:     s.eng.OwnerOf,
		StatefulOps: s.eng.StatefulOps(),
		Alpha:       s.opts.Alpha,
		Seed:        s.opts.Seed,
	})
	if err != nil {
		return err
	}
	if err := s.eng.RecoverArm(plan.Expects); err != nil {
		return fmt.Errorf("checkpoint: arm recovery buffers: %w", err)
	}
	s.emit(Event{Phase: PhaseArmed, Time: now, Server: f.Server, Keys: plan.MovedKeys})
	version, err := s.mgr.ApplyRepair(plan.Tables)
	if err != nil {
		return err
	}
	s.eng.UpdateTables(plan.Tables)
	// Shrink every split's replica set to the survivors (dissolving
	// splits left with fewer than two) before the alive mask recomputes
	// detours, so no tuple 2-choices onto a dead replica.
	s.eng.PruneSplitReplicas()
	s.eng.ApplyAliveRouting()
	s.emit(Event{Phase: PhaseRerouted, Time: now, Server: f.Server, Keys: plan.MovedKeys, Version: version})
	if err := s.eng.RecoverRestore(plan.Records); err != nil {
		return fmt.Errorf("checkpoint: restore state: %w", err)
	}
	report := RecoveryReport{
		Server:           f.Server,
		Version:          version,
		MovedKeys:        plan.MovedKeys,
		RestoredKeys:     plan.RestoredKeys,
		MergedPartials:   plan.MergedPartials,
		DetectionLatency: f.DetectionLatency(),
		Duration:         time.Since(start),
		TuplesLost:       s.eng.TuplesLost(),
	}
	s.reports = append(s.reports, report)
	s.opts.Meter.RecordRecovery(report.Duration, report.MovedKeys, report.RestoredKeys, report.TuplesLost)
	s.emit(Event{Phase: PhaseRecovered, Time: now, Server: f.Server, Keys: plan.MovedKeys, Version: version})
	return nil
}

// Liveness returns the detector's verdict for server s.
func (s *Supervisor) Liveness(server int) Liveness {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.det.Liveness(server)
}

// Recoveries returns the completed recoveries, oldest first.
func (s *Supervisor) Recoveries() []RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RecoveryReport(nil), s.reports...)
}

// Status returns the supervisor's public state.
func (s *Supervisor) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	states := s.det.States()
	liveness := make([]string, len(states))
	for i, st := range states {
		liveness[i] = st.String()
	}
	st := Status{
		Liveness:       liveness,
		LastCheckpoint: s.lastCkpt,
		Fault:          s.opts.Meter.Snapshot(),
		Recoveries:     append([]RecoveryReport(nil), s.reports...),
		StateVersion:   s.stateVer,
	}
	if r, ok := s.opts.Store.(StoreStatsReporter); ok {
		st.Store = r.StoreStats()
	}
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	return st
}

// Start launches the background supervision loop at the ProbeEvery
// cadence. No-op when already running.
func (s *Supervisor) Start() {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	if s.running {
		return
	}
	s.running = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func(stop <-chan struct{}, done chan<- struct{}) {
		defer close(done)
		ticker := time.NewTicker(s.opts.ProbeEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				// Background errors are retained for Status; the next
				// tick retries.
				_ = s.Tick(s.opts.Now())
			case <-stop:
				return
			}
		}
	}(s.stop, s.done)
}

// Stop halts the background loop and waits for an in-flight tick.
// Idempotent; Tick remains callable afterwards.
func (s *Supervisor) Stop() {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	if !s.running {
		return
	}
	close(s.stop)
	<-s.done
	s.running = false
}
