// Package checkpoint is the fault-tolerance subsystem layered on the
// locality-aware engine: periodic asynchronous incremental checkpoints
// of keyed operator state, heartbeat-based failure detection
// (suspect → confirmed), and a locality-preserving recovery path that
// moves only the failed server's keys (repartitioning the retained key
// graph with the survivors' keys pinned in place) and restores their
// state from the latest checkpoint.
//
// The paper's reconfiguration protocol (§3.4, Caneill et al.,
// Middleware'16) migrates state only for *planned* routing changes; this
// package extends the same building blocks — migration buffers, shared
// routing policies, the key-graph partitioner — to unplanned membership
// changes. Following Le Merrer et al. ("(Re)partitioning for
// stream-enabled computation"), a failure triggers an *incremental*
// repartitioning rather than a full reshuffle, and following Nasir et
// al. ("The Power of Both Choices"), recovery-time key movement is
// bounded: exactly the dead server's keys move, nothing else.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"github.com/locastream/locastream/internal/engine"
)

// Store persists incremental checkpoints. Each Append carries only the
// keys that changed since the previous checkpoint; Load folds all
// appends into the latest record per (operator, key) — the recovery
// image. Implementations must be safe for concurrent use.
type Store interface {
	// Append persists one incremental checkpoint.
	Append(recs []engine.KeyState) error
	// Load returns the latest record per (operator, key), sorted by
	// operator then key.
	Load() ([]engine.KeyState, error)
}

type recordKey struct {
	Op  string
	Key string
}

func mergeRecords(dst map[recordKey]engine.KeyState, recs []engine.KeyState) {
	for _, r := range recs {
		dst[recordKey{Op: r.Op, Key: r.Key}] = r
	}
}

func sortedRecords(m map[recordKey]engine.KeyState) []engine.KeyState {
	out := make([]engine.KeyState, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// MemoryStore keeps the merged checkpoint image in process memory, the
// default store. Safe for concurrent use.
type MemoryStore struct {
	mu   sync.Mutex
	recs map[recordKey]engine.KeyState
}

// Append implements Store.
func (m *MemoryStore) Append(recs []engine.KeyState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recs == nil {
		m.recs = make(map[recordKey]engine.KeyState)
	}
	mergeRecords(m.recs, recs)
	return nil
}

// Load implements Store.
func (m *MemoryStore) Load() ([]engine.KeyState, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedRecords(m.recs), nil
}

// fileRecord is the JSONL wire form of one checkpointed key. Data is
// base64 in the file (encoding/json's []byte convention); a nil Data
// round-trips as null, preserving the has-state distinction.
type fileRecord struct {
	Op   string `json:"op"`
	Inst int    `json:"inst"`
	Key  string `json:"key"`
	Data []byte `json:"data"`
}

// FileStore appends checkpoints to a JSONL file, one record per line,
// and reloads the merged image (last line per key wins) on Load — so a
// store reopened after a process restart recovers the same image the
// previous process would have. Safe for concurrent use.
type FileStore struct {
	path string

	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// NewFileStore opens (creating if needed) the JSONL checkpoint file at
// path.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	return &FileStore{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// Append implements Store: records are written as JSON lines and
// fsynced as a batch, so a checkpoint is durable before the supervisor
// considers it taken.
func (s *FileStore) Append(recs []engine.KeyState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("checkpoint: store %s is closed", s.path)
	}
	for _, r := range recs {
		line, err := json.Marshal(fileRecord{Op: r.Op, Inst: r.Inst, Key: r.Key, Data: r.Data})
		if err != nil {
			return fmt.Errorf("checkpoint: encode record: %w", err)
		}
		line = append(line, '\n')
		if _, err := s.w.Write(line); err != nil {
			return fmt.Errorf("checkpoint: write store: %w", err)
		}
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("checkpoint: flush store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync store: %w", err)
	}
	return nil
}

// Load implements Store: the whole file is replayed and merged. A
// truncated final line (crash mid-append) is skipped rather than
// failing the load — every complete line before it is still a valid
// prefix of the checkpoint history.
func (s *FileStore) Load() ([]engine.KeyState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			return nil, fmt.Errorf("checkpoint: flush store: %w", err)
		}
	}
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	defer f.Close()
	merged := make(map[recordKey]engine.KeyState)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var rec fileRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn tail write
		}
		merged[recordKey{Op: rec.Op, Key: rec.Key}] = engine.KeyState{
			Op: rec.Op, Inst: rec.Inst, Key: rec.Key, Data: rec.Data,
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: read store: %w", err)
	}
	return sortedRecords(merged), nil
}

// Close flushes and closes the underlying file. Idempotent.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f, s.w = nil, nil
	return err
}

var (
	_ Store = (*MemoryStore)(nil)
	_ Store = (*FileStore)(nil)
)
