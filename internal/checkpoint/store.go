// Package checkpoint is the fault-tolerance subsystem layered on the
// locality-aware engine: periodic asynchronous incremental checkpoints
// of keyed operator state, heartbeat-based failure detection
// (suspect → confirmed), and a locality-preserving recovery path that
// moves only the failed server's keys (repartitioning the retained key
// graph with the survivors' keys pinned in place) and restores their
// state from the latest checkpoint.
//
// The paper's reconfiguration protocol (§3.4, Caneill et al.,
// Middleware'16) migrates state only for *planned* routing changes; this
// package extends the same building blocks — migration buffers, shared
// routing policies, the key-graph partitioner — to unplanned membership
// changes. Following Le Merrer et al. ("(Re)partitioning for
// stream-enabled computation"), a failure triggers an *incremental*
// repartitioning rather than a full reshuffle, and following Nasir et
// al. ("The Power of Both Choices"), recovery-time key movement is
// bounded: exactly the dead server's keys move, nothing else.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"github.com/locastream/locastream/internal/engine"
)

// Store persists incremental checkpoints. Each Append carries only the
// keys that changed since the previous checkpoint; Load folds all
// appends into the latest record per (operator, key) — the recovery
// image. Keys promoted to split routing are the one exception to
// last-writer-wins: each replica's partial is an independent record, so
// the image holds one record per (operator, key, replica instance)
// while the key stays split and collapses back to a single record the
// moment a post-demote (non-split) snapshot lands. Implementations must
// be safe for concurrent use.
type Store interface {
	// Append persists one incremental checkpoint.
	Append(recs []engine.KeyState) error
	// Load returns the latest image, sorted by operator, key, then
	// instance — at most one record per (operator, key) except for keys
	// checkpointed while split, which carry one record per replica.
	Load() ([]engine.KeyState, error)
}

// VersionedStore is the optional tiered-store surface. A store
// implementing it stamps every appended checkpoint with a monotonically
// increasing version (the snapshot identity point-in-time reads are
// served against) and compacts incremental history in the background.
// The supervisor detects it dynamically: versions appear on checkpoint
// events and Status, and each checkpoint may trigger a compaction.
type VersionedStore interface {
	Store
	// AppendVersion persists one incremental checkpoint stamped with a
	// fresh version and returns that version.
	AppendVersion(recs []engine.KeyState) (uint64, error)
	// MaybeCompact starts a background compaction when the store's
	// policy says one is due, reporting whether it did. It must not
	// block on the compaction itself.
	MaybeCompact() bool
}

// StoreStatsReporter is implemented by stores that expose storage
// statistics (segment counts, compaction volume, lookup latency); the
// supervisor surfaces them on Status — and with it on the control
// plane's /checkpoints endpoint.
type StoreStatsReporter interface {
	StoreStats() any
}

// ImageKey identifies one keyed record in a checkpoint image.
type ImageKey struct {
	Op  string
	Key string
}

// Image is the merged checkpoint: per (op, key), the latest record per
// instance. Non-split keys always hold exactly one entry. The merge
// rules — last writer wins, split partials kept per replica, stale
// epochs pruned through Replicas, a non-split record superseding every
// partial — are the single source of truth for folding incremental
// checkpoint histories; the tiered statestore reuses them verbatim for
// compaction so a compacted image can never diverge from a replayed one.
type Image map[ImageKey]map[int]engine.KeyState

// Merge folds one batch of incremental records into the image.
func (img Image) Merge(recs []engine.KeyState) {
	for _, r := range recs {
		k := ImageKey{Op: r.Op, Key: r.Key}
		insts := img[k]
		if !r.Split {
			// A non-split record is the key's full state: it supersedes
			// every partial from any earlier split epoch.
			img[k] = map[int]engine.KeyState{r.Inst: r}
			continue
		}
		if insts == nil {
			insts = make(map[int]engine.KeyState, len(r.Replicas))
			img[k] = insts
		}
		// Drop partials (and stale full records) from instances outside
		// the record's replica set — they belong to an older epoch of
		// the split and were merged away at its demotion.
		current := make(map[int]bool, len(r.Replicas))
		for _, inst := range r.Replicas {
			current[inst] = true
		}
		for inst := range insts {
			if !current[inst] {
				delete(insts, inst)
			}
		}
		insts[r.Inst] = r
	}
}

// Sorted returns the image's records sorted by operator, key, then
// instance — the order Store.Load promises.
func (img Image) Sorted() []engine.KeyState {
	out := make([]engine.KeyState, 0, len(img))
	for _, insts := range img {
		for _, r := range insts {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Inst < out[j].Inst
	})
	return out
}

// MemoryStore keeps the merged checkpoint image in process memory, the
// default store. Safe for concurrent use.
type MemoryStore struct {
	mu   sync.Mutex
	recs Image
}

// Append implements Store.
func (m *MemoryStore) Append(recs []engine.KeyState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recs == nil {
		m.recs = make(Image)
	}
	m.recs.Merge(recs)
	return nil
}

// Load implements Store.
func (m *MemoryStore) Load() ([]engine.KeyState, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recs.Sorted(), nil
}

// fileRecord is the JSONL wire form of one checkpointed key. Data is
// base64 in the file (encoding/json's []byte convention); a nil Data
// round-trips as null, preserving the has-state distinction.
type fileRecord struct {
	Op   string `json:"op"`
	Inst int    `json:"inst"`
	Key  string `json:"key"`
	Data []byte `json:"data"`
	// Split-key annotation (see engine.KeyState); absent for ordinary
	// records so pre-split checkpoint files parse unchanged.
	Split    bool  `json:"split,omitempty"`
	Replicas []int `json:"replicas,omitempty"`
}

// FileStore appends checkpoints to a JSONL file, one record per line,
// and reloads the merged image (last line per key wins) on Load — so a
// store reopened after a process restart recovers the same image the
// previous process would have. Safe for concurrent use.
type FileStore struct {
	path string

	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// NewFileStore opens (creating if needed) the JSONL checkpoint file at
// path.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	return &FileStore{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

// Append implements Store: records are written as JSON lines and
// fsynced as a batch, so a checkpoint is durable before the supervisor
// considers it taken.
func (s *FileStore) Append(recs []engine.KeyState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("checkpoint: store %s is closed", s.path)
	}
	for _, r := range recs {
		line, err := json.Marshal(fileRecord{
			Op: r.Op, Inst: r.Inst, Key: r.Key, Data: r.Data,
			Split: r.Split, Replicas: r.Replicas,
		})
		if err != nil {
			return fmt.Errorf("checkpoint: encode record: %w", err)
		}
		line = append(line, '\n')
		if _, err := s.w.Write(line); err != nil {
			return fmt.Errorf("checkpoint: write store: %w", err)
		}
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("checkpoint: flush store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync store: %w", err)
	}
	return nil
}

// maxLineBytes caps one JSONL record line on reload; a record this
// large means the file is damaged or the store was misused, and the
// error says so instead of surfacing a bare bufio.ErrTooLong.
const maxLineBytes = 16 * 1024 * 1024

// Load implements Store: the whole file is replayed and merged. Only a
// truncated *final* line (crash mid-append) is skipped rather than
// failing the load — every complete line before it is still a valid
// prefix of the checkpoint history. An unparseable line with more data
// after it cannot be a torn tail: it is interior corruption, and
// silently dropping it would resurrect a stale version of those keys,
// so the load fails instead.
func (s *FileStore) Load() ([]engine.KeyState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			return nil, fmt.Errorf("checkpoint: flush store: %w", err)
		}
	}
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	defer f.Close()
	merged := make(Image)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	line := 0
	tornLine := 0 // 1-based line number of a decode failure, 0 if none
	for sc.Scan() {
		line++
		if tornLine != 0 {
			return nil, fmt.Errorf("checkpoint: corrupt record at %s:%d (not the final line)", s.path, tornLine)
		}
		var rec fileRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// Tolerated only if nothing follows (torn tail write).
			tornLine = line
			continue
		}
		merged.Merge([]engine.KeyState{{
			Op: rec.Op, Inst: rec.Inst, Key: rec.Key, Data: rec.Data,
			Split: rec.Split, Replicas: rec.Replicas,
		}})
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("checkpoint: record on %s:%d exceeds the %d MiB line cap (oversized or corrupt record): %w",
				s.path, line+1, maxLineBytes>>20, err)
		}
		return nil, fmt.Errorf("checkpoint: read store: %w", err)
	}
	return merged.Sorted(), nil
}

// Close flushes and closes the underlying file. Idempotent.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f, s.w = nil, nil
	return err
}

var (
	_ Store = (*MemoryStore)(nil)
	_ Store = (*FileStore)(nil)
)
