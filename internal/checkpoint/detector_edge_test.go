package checkpoint

import (
	"testing"
	"time"
)

// boolPinger answers probes from a per-server switch.
type boolPinger struct{ up []bool }

func (p *boolPinger) Ping(s int) bool { return p.up[s] }

// TestDetectorSameRoundSuspectConfirm drives the edge where silence
// crosses the suspect AND confirm thresholds within one probe round
// (e.g. after a clock jump or a long GC pause in the host): the
// escalation must emit BOTH transitions exactly once in that round.
func TestDetectorSameRoundSuspectConfirm(t *testing.T) {
	p := &boolPinger{up: []bool{true, true}}
	d := NewDetector(p, 2, DetectorOptions{
		SuspectAfter: 2 * time.Second,
		ConfirmAfter: 6 * time.Second,
	})
	t0 := time.Unix(1000, 0)

	// Round 1 establishes the baseline; everyone answers.
	v := d.Probe(t0)
	if len(v.Failing)+len(v.Suspected)+len(v.Confirmed) != 0 {
		t.Fatalf("baseline round not clean: %+v", v)
	}

	// Server 1 dies; the next round happens only after the confirm
	// threshold has already passed (the clock jumped 10s).
	p.up[1] = false
	v = d.Probe(t0.Add(10 * time.Second))
	if len(v.Suspected) != 1 || v.Suspected[0] != 1 {
		t.Fatalf("same-round crossing must emit the suspect transition once, got %v", v.Suspected)
	}
	if len(v.Confirmed) != 1 || v.Confirmed[0].Server != 1 {
		t.Fatalf("same-round crossing must emit the confirm transition once, got %+v", v.Confirmed)
	}
	if got := v.Confirmed[0].DownSince; !got.Equal(t0) {
		t.Fatalf("DownSince = %v, want baseline %v", got, t0)
	}
	if d.Liveness(1) != Confirmed {
		t.Fatalf("server 1 liveness = %v, want confirmed", d.Liveness(1))
	}

	// Later rounds must not re-emit either transition (confirmation is
	// final and the server is skipped).
	v = d.Probe(t0.Add(20 * time.Second))
	if len(v.Suspected) != 0 || len(v.Confirmed) != 0 || len(v.Failing) != 0 {
		t.Fatalf("confirmed server re-emitted transitions: %+v", v)
	}
}

// TestDetectorHeartbeatSameRoundNeverConfirms pins the other half of the
// edge: however long a server has been silent, answering the probe in
// the current round resets it to Alive — the detector never confirms a
// server that heartbeated in the same round.
func TestDetectorHeartbeatSameRoundNeverConfirms(t *testing.T) {
	p := &boolPinger{up: []bool{true}}
	d := NewDetector(p, 1, DetectorOptions{
		SuspectAfter: 2 * time.Second,
		ConfirmAfter: 6 * time.Second,
	})
	t0 := time.Unix(2000, 0)
	d.Probe(t0)

	// Silent long enough to be suspected.
	p.up[0] = false
	v := d.Probe(t0.Add(3 * time.Second))
	if len(v.Suspected) != 1 {
		t.Fatalf("expected suspect after 3s of silence, got %+v", v)
	}

	// The server answers again in the round where silence would have
	// crossed ConfirmAfter: it must return to Alive, not be confirmed.
	p.up[0] = true
	v = d.Probe(t0.Add(10 * time.Second))
	if len(v.Confirmed) != 0 || len(v.Failing) != 0 {
		t.Fatalf("heartbeating server was escalated: %+v", v)
	}
	if d.Liveness(0) != Alive {
		t.Fatalf("liveness = %v, want alive", d.Liveness(0))
	}

	// And the recovery reset the baseline: a fresh silence needs the full
	// thresholds again.
	p.up[0] = false
	v = d.Probe(t0.Add(11 * time.Second))
	if len(v.Suspected) != 0 || len(v.Confirmed) != 0 {
		t.Fatalf("1s of fresh silence escalated: %+v", v)
	}
	v = d.Probe(t0.Add(17 * time.Second))
	if len(v.Suspected) != 1 || len(v.Confirmed) != 1 {
		t.Fatalf("6s of fresh silence must suspect+confirm in one round, got %+v", v)
	}
}

// TestDetectorDistinctRoundsStillSingleTransitions guards the normal
// path: when suspect and confirm happen in different rounds, each edge
// fires exactly once.
func TestDetectorDistinctRoundsStillSingleTransitions(t *testing.T) {
	p := &boolPinger{up: []bool{true}}
	d := NewDetector(p, 1, DetectorOptions{
		SuspectAfter: 2 * time.Second,
		ConfirmAfter: 6 * time.Second,
	})
	t0 := time.Unix(3000, 0)
	d.Probe(t0)
	p.up[0] = false

	var suspects, confirms int
	for i := 1; i <= 8; i++ {
		v := d.Probe(t0.Add(time.Duration(i) * time.Second))
		suspects += len(v.Suspected)
		confirms += len(v.Confirmed)
	}
	if suspects != 1 || confirms != 1 {
		t.Fatalf("got %d suspect / %d confirm transitions, want exactly 1 each", suspects, confirms)
	}
}
