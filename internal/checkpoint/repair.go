package checkpoint

import (
	"fmt"
	"sort"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/scale"
)

// RepairInput is everything the planner needs to compute a
// minimal-movement, locality-preserving reassignment of a dead server's
// keys.
type RepairInput struct {
	// Place is the static instance placement.
	Place *cluster.Placement
	// Alive is the per-server usability vector after the failure
	// (alive AND inside the elastic membership — engine.UsableServers).
	Alive []bool
	// Tables are the currently deployed routing tables (per operator).
	Tables map[string]*routing.Table
	// Stats is the key-pair statistics window retained at the last
	// checkpoint — the key graph the locality-preserving placement of
	// orphaned keys is computed from. The dead server's own sketches are
	// gone with it; this retained copy is why the planner still knows
	// which keys travel together.
	Stats []engine.PairStat
	// Checkpoint is the merged latest checkpoint image (Store.Load).
	// Split keys may contribute several records — one partial per
	// replica instance.
	Checkpoint []engine.KeyState
	// Splits lists the keys currently promoted to replicated (split)
	// routing (engine.Live.SplitSnapshot). A split key never enters the
	// repair partitioning: its new owner is the first surviving replica
	// in original order — the same choice engine.PruneSplitReplicas
	// makes — and dead replicas' checkpointed partials become Merge
	// records folded into that owner.
	Splits []engine.SplitKeyInfo
	// OwnerOf resolves the current owner instance of a key not found in
	// Tables (the hash-fallback path); engine.Live.OwnerOf implements
	// it.
	OwnerOf func(op, key string) (int, bool)
	// StatefulOps are the operators holding keyed state
	// (engine.Live.StatefulOps) — the only ones that need buffer arming
	// and state restoration.
	StatefulOps []string
	// Alpha is the balance bound of the repair partitioning. Zero
	// selects 1.5 — deliberately looser than the optimizer's 1.03:
	// during repair, keeping correlated key pairs together (locality)
	// and moving nothing but the dead server's keys outranks strict
	// balance, and the next planned reconfiguration restores the tight
	// bound anyway. Seed fixes tie-breaking.
	Alpha float64
	Seed  int64
}

// DefaultRepairAlpha is the default balance bound of the repair
// partitioning (see RepairInput.Alpha).
const DefaultRepairAlpha = scale.DefaultAlpha

// RepairPlan is the computed recovery: new routing tables covering every
// reassigned key, the buffers to arm, and the state records to restore.
type RepairPlan struct {
	// Dead lists the dead servers the plan repairs around.
	Dead []int
	// Tables merges the surviving assignments (untouched) with the new
	// homes of the dead servers' keys; install with Manager.ApplyRepair
	// + engine.UpdateTables.
	Tables map[string]*routing.Table
	// Expects maps op -> adopting instance -> keys to arm
	// (engine.RecoverArm), stateful operators only.
	Expects map[string]map[int][]string
	// Records carries one migration record per recovering stateful key,
	// Inst rewritten to the adopting instance; Data is nil for keys that
	// never reached a checkpoint (they restart empty — the bounded-loss
	// guarantee).
	Records []engine.KeyState
	// MovedKeys counts reassigned keys across all operators.
	MovedKeys int
	// RestoredKeys counts records carrying checkpointed state.
	RestoredKeys int
	// MergedPartials counts split-key partial records recovered as
	// merges into a surviving replica.
	MergedPartials int
}

// PlanRepair computes where the dead servers' keys go. It is the
// degenerate case of elastic rescaling — remove servers, add none — and
// delegates the movement planning to scale.PlanRescale: survivor keys
// are pinned to their current servers and the retained key graph is
// re-partitioned under that constraint, so orphaned keys land next to
// the keys they exchange tuples with — locality is preserved — while
// keys owned by survivors never move (minimal movement). Orphaned keys
// absent from the graph (no statistics) spread deterministically by
// hash over the survivors. What remains here is the checkpoint layering:
// which buffers to arm and which saved records restore or merge where.
func PlanRepair(in RepairInput) (*RepairPlan, error) {
	if in.Place == nil {
		return nil, fmt.Errorf("checkpoint: repair needs a placement")
	}
	if len(in.Alive) != in.Place.Servers() {
		return nil, fmt.Errorf("checkpoint: %d liveness entries for %d servers",
			len(in.Alive), in.Place.Servers())
	}
	anyAlive := false
	for _, ok := range in.Alive {
		anyAlive = anyAlive || ok
	}
	if !anyAlive {
		return nil, fmt.Errorf("checkpoint: no surviving servers")
	}
	stateful := make(map[string]bool, len(in.StatefulOps))
	for _, op := range in.StatefulOps {
		stateful[op] = true
	}
	// Checkpointed keys belong to the key universe even when no table or
	// statistic names them.
	ckpt := make(map[ImageKey][]engine.KeyState, len(in.Checkpoint))
	extra := make(map[string][]string)
	for _, r := range in.Checkpoint {
		k := ImageKey{Op: r.Op, Key: r.Key}
		if ckpt[k] == nil {
			extra[r.Op] = append(extra[r.Op], r.Key)
		}
		ckpt[k] = append(ckpt[k], r)
	}
	alpha := in.Alpha
	if alpha <= 0 {
		alpha = DefaultRepairAlpha
	}
	sp, err := scale.PlanRescale(scale.PlanInput{
		Place:       in.Place,
		To:          in.Alive,
		Tables:      in.Tables,
		Stats:       in.Stats,
		Splits:      in.Splits,
		ExtraKeys:   extra,
		OwnerOf:     in.OwnerOf,
		StatefulOps: in.StatefulOps,
		Alpha:       alpha,
		Seed:        in.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}

	plan := &RepairPlan{
		Dead:      sp.Leaving,
		Tables:    sp.Tables,
		Expects:   make(map[string]map[int][]string),
		MovedKeys: sp.MovedKeys,
	}

	// Surviving splits re-owned by the planner: fold every dead
	// replica's checkpointed partial into the new owner. No buffer
	// arming — the owner's live partial stays valid throughout, and the
	// merge contract is associative, so tuples landing before the merge
	// applies are simply added on top.
	for _, ro := range sp.SplitReowns {
		for _, saved := range ckpt[ImageKey{Op: ro.Op, Key: ro.Key}] {
			if saved.Data == nil || !deadInstance(saved.Inst, ro.Gone) {
				continue
			}
			plan.Records = append(plan.Records, engine.KeyState{
				Op: ro.Op, Inst: ro.NewOwner, Key: ro.Key, Data: saved.Data, Merge: true,
			})
			plan.MergedPartials++
		}
	}

	// Ordinary orphans: arm the adopting instance's buffer and restore
	// the checkpointed state. A key checkpointed while split carries one
	// partial per replica (and a fully-dead split lands here): the
	// owner's partial restores as the base image, the others fold in as
	// merges.
	ops := make([]string, 0, len(sp.Assigned))
	for op := range sp.Assigned {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		keys := make([]string, 0, len(sp.Assigned[op]))
		for key := range sp.Assigned[op] {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if !stateful[op] {
				continue
			}
			inst := sp.Assigned[op][key]
			if plan.Expects[op] == nil {
				plan.Expects[op] = make(map[int][]string)
			}
			plan.Expects[op][inst] = append(plan.Expects[op][inst], key)
			saved := ckpt[ImageKey{Op: op, Key: key}]
			base := primaryRecord(saved)
			rec := engine.KeyState{Op: op, Inst: inst, Key: key}
			if base >= 0 && saved[base].Data != nil {
				rec.Data = saved[base].Data
				plan.RestoredKeys++
			}
			plan.Records = append(plan.Records, rec)
			for i, s := range saved {
				if i == base || s.Data == nil {
					continue
				}
				plan.Records = append(plan.Records, engine.KeyState{
					Op: op, Inst: inst, Key: key, Data: s.Data, Merge: true,
				})
				plan.MergedPartials++
			}
		}
	}
	return plan, nil
}

// primaryRecord picks the record restored as the key's base image: the
// partial snapshotted at the split owner when the annotation identifies
// one, else the first record (-1 when there are none).
func primaryRecord(recs []engine.KeyState) int {
	if len(recs) == 0 {
		return -1
	}
	for i, r := range recs {
		if r.Split && len(r.Replicas) > 0 && r.Inst == r.Replicas[0] {
			return i
		}
	}
	return 0
}

// deadInstance reports whether inst is in the dead replica list.
func deadInstance(inst int, dead []int) bool {
	for _, d := range dead {
		if d == inst {
			return true
		}
	}
	return false
}
