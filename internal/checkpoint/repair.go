package checkpoint

import (
	"fmt"
	"sort"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/keygraph"
	"github.com/locastream/locastream/internal/partition"
	"github.com/locastream/locastream/internal/routing"
)

// RepairInput is everything the planner needs to compute a
// minimal-movement, locality-preserving reassignment of a dead server's
// keys.
type RepairInput struct {
	// Place is the static instance placement.
	Place *cluster.Placement
	// Alive is the per-server liveness vector after the failure.
	Alive []bool
	// Tables are the currently deployed routing tables (per operator).
	Tables map[string]*routing.Table
	// Stats is the key-pair statistics window retained at the last
	// checkpoint — the key graph the locality-preserving placement of
	// orphaned keys is computed from. The dead server's own sketches are
	// gone with it; this retained copy is why the planner still knows
	// which keys travel together.
	Stats []engine.PairStat
	// Checkpoint is the merged latest checkpoint image (Store.Load).
	// Split keys may contribute several records — one partial per
	// replica instance.
	Checkpoint []engine.KeyState
	// Splits lists the keys currently promoted to replicated (split)
	// routing (engine.Live.SplitSnapshot). A split key never enters the
	// repair partitioning: its new owner is the first surviving replica
	// in original order — the same choice engine.PruneSplitReplicas
	// makes — and dead replicas' checkpointed partials become Merge
	// records folded into that owner.
	Splits []engine.SplitKeyInfo
	// OwnerOf resolves the current owner instance of a key not found in
	// Tables (the hash-fallback path); engine.Live.OwnerOf implements
	// it.
	OwnerOf func(op, key string) (int, bool)
	// StatefulOps are the operators holding keyed state
	// (engine.Live.StatefulOps) — the only ones that need buffer arming
	// and state restoration.
	StatefulOps []string
	// Alpha is the balance bound of the repair partitioning. Zero
	// selects 1.5 — deliberately looser than the optimizer's 1.03:
	// during repair, keeping correlated key pairs together (locality)
	// and moving nothing but the dead server's keys outranks strict
	// balance, and the next planned reconfiguration restores the tight
	// bound anyway. Seed fixes tie-breaking.
	Alpha float64
	Seed  int64
}

// DefaultRepairAlpha is the default balance bound of the repair
// partitioning (see RepairInput.Alpha).
const DefaultRepairAlpha = 1.5

// RepairPlan is the computed recovery: new routing tables covering every
// reassigned key, the buffers to arm, and the state records to restore.
type RepairPlan struct {
	// Dead lists the dead servers the plan repairs around.
	Dead []int
	// Tables merges the surviving assignments (untouched) with the new
	// homes of the dead servers' keys; install with Manager.ApplyRepair
	// + engine.UpdateTables.
	Tables map[string]*routing.Table
	// Expects maps op -> adopting instance -> keys to arm
	// (engine.RecoverArm), stateful operators only.
	Expects map[string]map[int][]string
	// Records carries one migration record per recovering stateful key,
	// Inst rewritten to the adopting instance; Data is nil for keys that
	// never reached a checkpoint (they restart empty — the bounded-loss
	// guarantee).
	Records []engine.KeyState
	// MovedKeys counts reassigned keys across all operators.
	MovedKeys int
	// RestoredKeys counts records carrying checkpointed state.
	RestoredKeys int
	// MergedPartials counts split-key partial records recovered as
	// merges into a surviving replica.
	MergedPartials int
}

// PlanRepair computes where the dead servers' keys go. Survivor keys are
// pinned to their current servers and the retained key graph is
// re-partitioned under that constraint, so orphaned keys land next to
// the keys they exchange tuples with — locality is preserved — while
// keys owned by survivors never move (minimal movement). Orphaned keys
// absent from the graph (no statistics) spread deterministically by
// hash over the survivors.
func PlanRepair(in RepairInput) (*RepairPlan, error) {
	if in.Place == nil {
		return nil, fmt.Errorf("checkpoint: repair needs a placement")
	}
	if len(in.Alive) != in.Place.Servers() {
		return nil, fmt.Errorf("checkpoint: %d liveness entries for %d servers",
			len(in.Alive), in.Place.Servers())
	}
	var survivors, dead []int
	for s, ok := range in.Alive {
		if ok {
			survivors = append(survivors, s)
		} else {
			dead = append(dead, s)
		}
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("checkpoint: no surviving servers")
	}
	partOf := make(map[int]int, len(survivors)) // server -> part index
	for i, s := range survivors {
		partOf[s] = i
	}
	stateful := make(map[string]bool, len(in.StatefulOps))
	for _, op := range in.StatefulOps {
		stateful[op] = true
	}

	// The key universe: everything named by a routing table, a
	// checkpoint record, or the retained key graph. Keys outside it have
	// neither state nor an explicit assignment; after ApplyAliveRouting
	// they hash-detour deterministically and start fresh.
	keysOf := make(map[string]map[string]bool)
	note := func(op, key string) {
		if keysOf[op] == nil {
			keysOf[op] = make(map[string]bool)
		}
		keysOf[op][key] = true
	}
	for op, t := range in.Tables {
		for key := range t.Assign {
			note(op, key)
		}
	}
	ckpt := make(map[ImageKey][]engine.KeyState, len(in.Checkpoint))
	for _, r := range in.Checkpoint {
		k := ImageKey{Op: r.Op, Key: r.Key}
		ckpt[k] = append(ckpt[k], r)
		note(r.Op, r.Key)
	}

	// Split keys route by their replica set, not the table. One with a
	// surviving replica is re-owned in place: the first alive replica in
	// original order becomes the owner — the same choice
	// engine.PruneSplitReplicas makes, so the planner and the engine
	// agree without coordination — and the key is pinned there, out of
	// the repair partitioning. Only a split key that lost every replica
	// falls through to the ordinary orphan path below.
	type reowned struct {
		newOwner int
		moved    bool  // original owner was on a dead server
		dead     []int // dead replica instances (partials to merge)
	}
	splitReowned := make(map[ImageKey]*reowned)
	for _, si := range in.Splits {
		k := ImageKey{Op: si.Op, Key: si.Key}
		note(si.Op, si.Key)
		ro := &reowned{newOwner: -1}
		for _, inst := range si.Replicas {
			s := in.Place.ServerOf(si.Op, inst)
			if s >= 0 && in.Alive[s] {
				if ro.newOwner == -1 {
					ro.newOwner = inst
				}
			} else {
				ro.dead = append(ro.dead, inst)
			}
		}
		if ro.newOwner == -1 {
			continue // every replica died: ordinary orphan
		}
		if len(si.Replicas) > 0 {
			ownerS := in.Place.ServerOf(si.Op, si.Replicas[0])
			ro.moved = ownerS < 0 || !in.Alive[ownerS]
		}
		splitReowned[k] = ro
	}
	graph := keygraph.New()
	for _, st := range in.Stats {
		graph.AddPairs(st.FromOp, st.ToOp, st.Pairs, 0)
	}
	for _, v := range graph.Vertices() {
		note(v.ID.Op, v.ID.Key)
	}

	// Current owners, split into pinned survivors and orphans.
	ownerServer := func(op, key string) (int, bool) {
		if t := in.Tables[op]; t != nil {
			if inst, ok := t.Assign[key]; ok {
				if s := in.Place.ServerOf(op, inst); s >= 0 {
					return s, true
				}
			}
		}
		if in.OwnerOf != nil {
			if inst, ok := in.OwnerOf(op, key); ok {
				if s := in.Place.ServerOf(op, inst); s >= 0 {
					return s, true
				}
			}
		}
		return 0, false
	}
	type orphan struct{ op, key string }
	var orphans []orphan
	pinnedServer := make(map[keygraph.VertexID]int)
	ops := make([]string, 0, len(keysOf))
	for op := range keysOf {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		keys := make([]string, 0, len(keysOf[op]))
		for key := range keysOf[op] {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if ro, ok := splitReowned[ImageKey{Op: op, Key: key}]; ok {
				pinnedServer[keygraph.VertexID{Op: op, Key: key}] = in.Place.ServerOf(op, ro.newOwner)
				continue
			}
			server, ok := ownerServer(op, key)
			if !ok {
				continue // unroutable (no fields-grouped input): nothing to repair
			}
			if in.Alive[server] {
				pinnedServer[keygraph.VertexID{Op: op, Key: key}] = server
			} else {
				orphans = append(orphans, orphan{op: op, key: key})
			}
		}
	}

	plan := &RepairPlan{
		Dead:    dead,
		Tables:  make(map[string]*routing.Table),
		Expects: make(map[string]map[int][]string),
	}
	for op, t := range in.Tables {
		plan.Tables[op] = t.Clone()
	}

	// Re-own surviving splits: repoint the table pin at the new owner
	// and fold every dead replica's checkpointed partial into it. No
	// buffer arming — the owner's live partial stays valid throughout,
	// and the merge contract is associative, so tuples landing before
	// the merge applies are simply added on top.
	splitKeys := make([]ImageKey, 0, len(splitReowned))
	for k := range splitReowned {
		splitKeys = append(splitKeys, k)
	}
	sort.Slice(splitKeys, func(i, j int) bool {
		if splitKeys[i].Op != splitKeys[j].Op {
			return splitKeys[i].Op < splitKeys[j].Op
		}
		return splitKeys[i].Key < splitKeys[j].Key
	})
	for _, k := range splitKeys {
		ro := splitReowned[k]
		if ro.moved {
			table := plan.Tables[k.Op]
			if table == nil {
				table = &routing.Table{Assign: make(map[string]int)}
				plan.Tables[k.Op] = table
			}
			table.Assign[k.Key] = ro.newOwner
			plan.MovedKeys++
		}
		for _, saved := range ckpt[k] {
			if saved.Data == nil || !deadInstance(saved.Inst, ro.dead) {
				continue
			}
			plan.Records = append(plan.Records, engine.KeyState{
				Op: k.Op, Inst: ro.newOwner, Key: k.Key, Data: saved.Data, Merge: true,
			})
			plan.MergedPartials++
		}
	}

	if len(orphans) == 0 {
		return plan, nil
	}

	// Locality-preserving placement: re-partition the retained key graph
	// over the survivors with every survivor-owned vertex pinned to its
	// current server. Only the orphans are free, so the partitioner
	// places each next to its heaviest surviving neighbours under the
	// balance constraint — and cannot move anything else.
	alpha := in.Alpha
	if alpha <= 0 {
		alpha = DefaultRepairAlpha
	}
	orphanServer := make(map[keygraph.VertexID]int, len(orphans))
	if graph.NumVertices() > 0 {
		ids, weights, adjRaw := graph.CSR()
		pinned := make([]int, len(ids))
		for i, id := range ids {
			if s, ok := pinnedServer[id]; ok {
				pinned[i] = partOf[s]
			} else {
				pinned[i] = -1
			}
		}
		adj := make([][]partition.Adj, len(adjRaw))
		for i, list := range adjRaw {
			conv := make([]partition.Adj, len(list))
			for j, a := range list {
				conv[j] = partition.Adj{To: a.To, Weight: a.Weight}
			}
			adj[i] = conv
		}
		res, err := partition.Partition(
			&partition.Graph{Weights: weights, Adj: adj},
			partition.Options{K: len(survivors), Alpha: alpha, Seed: in.Seed, Pinned: pinned},
		)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: repair partition: %w", err)
		}
		for i, id := range ids {
			if pinned[i] == -1 {
				orphanServer[id] = survivors[res.Parts[i]]
			}
		}
	}

	for _, o := range orphans {
		server, ok := orphanServer[keygraph.VertexID{Op: o.op, Key: o.key}]
		if !ok {
			// No statistics for this key: spread by hash over survivors.
			server = survivors[routing.HashKey(o.key, len(survivors))]
		}
		inst, ok := adoptInstance(in.Place, o.op, o.key, server, survivors)
		if !ok {
			return nil, fmt.Errorf("checkpoint: no surviving instance of %q", o.op)
		}
		table := plan.Tables[o.op]
		if table == nil {
			table = &routing.Table{Assign: make(map[string]int)}
			plan.Tables[o.op] = table
		}
		table.Assign[o.key] = inst
		plan.MovedKeys++
		if !stateful[o.op] {
			continue
		}
		if plan.Expects[o.op] == nil {
			plan.Expects[o.op] = make(map[int][]string)
		}
		plan.Expects[o.op][inst] = append(plan.Expects[o.op][inst], o.key)
		// A key checkpointed while split carries one partial per replica
		// (and a fully-dead split lands here): the owner's partial
		// restores as the base image, the others fold in as merges.
		saved := ckpt[ImageKey{Op: o.op, Key: o.key}]
		base := primaryRecord(saved)
		rec := engine.KeyState{Op: o.op, Inst: inst, Key: o.key}
		if base >= 0 && saved[base].Data != nil {
			rec.Data = saved[base].Data
			plan.RestoredKeys++
		}
		plan.Records = append(plan.Records, rec)
		for i, s := range saved {
			if i == base || s.Data == nil {
				continue
			}
			plan.Records = append(plan.Records, engine.KeyState{
				Op: o.op, Inst: inst, Key: o.key, Data: s.Data, Merge: true,
			})
			plan.MergedPartials++
		}
	}
	return plan, nil
}

// primaryRecord picks the record restored as the key's base image: the
// partial snapshotted at the split owner when the annotation identifies
// one, else the first record (-1 when there are none).
func primaryRecord(recs []engine.KeyState) int {
	if len(recs) == 0 {
		return -1
	}
	for i, r := range recs {
		if r.Split && len(r.Replicas) > 0 && r.Inst == r.Replicas[0] {
			return i
		}
	}
	return 0
}

// deadInstance reports whether inst is in the dead replica list.
func deadInstance(inst int, dead []int) bool {
	for _, d := range dead {
		if d == inst {
			return true
		}
	}
	return false
}

// adoptInstance picks the instance of op on server that adopts key,
// spreading co-located instances by hash (mirroring the optimizer's
// instanceOn). When op has no instance on the chosen server the
// survivors are scanned in deterministic order for one that hosts the
// operator.
func adoptInstance(place *cluster.Placement, op, key string, server int, survivors []int) (int, bool) {
	if insts := place.InstancesOn(op, server); len(insts) > 0 {
		return insts[routing.HashKey(key, len(insts))], true
	}
	start := 0
	for i, s := range survivors {
		if s == server {
			start = i
			break
		}
	}
	for i := 1; i < len(survivors); i++ {
		s := survivors[(start+i)%len(survivors)]
		if insts := place.InstancesOn(op, s); len(insts) > 0 {
			return insts[routing.HashKey(key, len(insts))], true
		}
	}
	return 0, false
}
