package checkpoint

import (
	"testing"

	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/scale"
	"github.com/locastream/locastream/internal/spacesaving"
)

// TestPlanRepairEquivalentToPlanRescale: failure repair is the
// degenerate rescale — remove the dead servers, add none. PlanRepair
// (which layers checkpoint restoration on top) must produce exactly the
// tables, move count and split re-ownings of a direct PlanRescale call
// with the same inputs.
func TestPlanRepairEquivalentToPlanRescale(t *testing.T) {
	const servers = 4
	place := repairPlace(t, servers)
	tables := map[string]*routing.Table{
		"A": {Assign: map[string]int{}},
		"B": {Assign: map[string]int{"hot": 3}},
	}
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5"}
	for i, k := range keys {
		tables["A"].Assign[k] = i % servers
	}
	stats := []engine.PairStat{{
		FromOp: "A", ToOp: "B",
		Pairs: []spacesaving.PairCounter{
			{In: "k3", Out: "k3", Count: 100},
			{In: "k3", Out: "k0", Count: 80},
			{In: "k0", Out: "k0", Count: 60},
		},
	}}
	ckpt := []engine.KeyState{
		{Op: "A", Inst: 3, Key: "k3", Data: []byte("s3")},
		{Op: "A", Inst: 3, Key: "orphan", Data: []byte("so")}, // checkpoint-only key
		{Op: "B", Inst: 1, Key: "hot", Data: []byte("p1"), Split: true, Replicas: []int{3, 1}},
		{Op: "B", Inst: 3, Key: "hot", Data: []byte("p3"), Split: true, Replicas: []int{3, 1}},
	}
	splits := []engine.SplitKeyInfo{{Op: "B", Key: "hot", Replicas: []int{3, 1}}}
	ownerOf := func(op, key string) (int, bool) {
		if op == "A" && key == "orphan" {
			return 3, true
		}
		return 0, false
	}
	alive := aliveMask(servers, 3)

	repair, err := PlanRepair(RepairInput{
		Place:       place,
		Alive:       alive,
		Tables:      tables,
		Stats:       stats,
		Checkpoint:  ckpt,
		Splits:      splits,
		OwnerOf:     ownerOf,
		StatefulOps: []string{"A", "B"},
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rescale, err := scale.PlanRescale(scale.PlanInput{
		Place:       place,
		To:          alive, // From nil = all servers: remove 3, add none
		Tables:      tables,
		Stats:       stats,
		Splits:      splits,
		ExtraKeys:   map[string][]string{"A": {"k3", "orphan"}, "B": {"hot"}},
		OwnerOf:     ownerOf,
		StatefulOps: []string{"A", "B"},
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(rescale.Leaving) != 1 || rescale.Leaving[0] != 3 {
		t.Fatalf("rescale Leaving = %v, want [3]", rescale.Leaving)
	}
	if len(repair.Dead) != len(rescale.Leaving) || repair.Dead[0] != rescale.Leaving[0] {
		t.Fatalf("Dead = %v, Leaving = %v", repair.Dead, rescale.Leaving)
	}
	if repair.MovedKeys != rescale.MovedKeys {
		t.Fatalf("MovedKeys: repair %d, rescale %d", repair.MovedKeys, rescale.MovedKeys)
	}
	for op, rt := range rescale.Tables {
		pt := repair.Tables[op]
		if pt == nil || len(pt.Assign) != len(rt.Assign) {
			t.Fatalf("tables for %s differ: repair %+v, rescale %+v", op, pt, rt)
		}
		for k, inst := range rt.Assign {
			if pt.Assign[k] != inst {
				t.Fatalf("%s[%q]: repair %d, rescale %d", op, k, pt.Assign[k], inst)
			}
		}
	}
	if len(rescale.SplitReowns) != 1 || rescale.SplitReowns[0].NewOwner != 1 {
		t.Fatalf("rescale SplitReowns = %+v, want hot re-owned at 1", rescale.SplitReowns)
	}
	// The repair layered the checkpoint on top: the dead owner's partial
	// merges into the surviving replica the rescale chose.
	foundMerge := false
	for _, r := range repair.Records {
		if r.Op == "B" && r.Key == "hot" {
			if !r.Merge || r.Inst != rescale.SplitReowns[0].NewOwner || string(r.Data) != "p3" {
				t.Fatalf("hot record = %+v, want p3 merged into inst 1", r)
			}
			foundMerge = true
		}
	}
	if !foundMerge {
		t.Fatal("dead owner's partial never merged")
	}
}
