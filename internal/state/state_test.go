package state

import (
	"testing"

	"github.com/locastream/locastream/internal/topology"
)

func tupleFor(key string) topology.Tuple {
	return topology.Tuple{Values: []string{key}}
}

func TestExtractAndInstall(t *testing.T) {
	src := topology.NewCounter(0)
	for i := 0; i < 3; i++ {
		src.Process(tupleFor("a"), func(topology.Tuple) {})
	}
	src.Process(tupleFor("b"), func(topology.Tuple) {})

	states := Extract(src, []string{"a", "missing"})
	if len(states) != 2 {
		t.Fatalf("Extract returned %d entries, want 2", len(states))
	}
	if states["a"] == nil {
		t.Fatal("state for a missing")
	}
	if states["missing"] != nil {
		t.Fatal("state for missing key should be nil")
	}
	// Extract must remove migrated state from the source.
	if src.Count("a") != 0 {
		t.Fatalf("source still has count %d for a", src.Count("a"))
	}
	if src.Count("b") != 1 {
		t.Fatal("unrelated key b was touched")
	}

	dst := topology.NewCounter(0)
	if err := Install(dst, states); err != nil {
		t.Fatal(err)
	}
	if dst.Count("a") != 3 {
		t.Fatalf("dst count a = %d, want 3", dst.Count("a"))
	}
	if dst.Count("missing") != 0 {
		t.Fatal("nil payload should not create state")
	}
}

func TestInstallBadPayload(t *testing.T) {
	dst := topology.NewCounter(0)
	err := Install(dst, map[string][]byte{"k": {1, 2}})
	if err == nil {
		t.Fatal("Install accepted malformed payload")
	}
}

func TestBufferLifecycle(t *testing.T) {
	b := NewBuffer()
	if b.Pending("k") {
		t.Fatal("fresh buffer has pending key")
	}
	if b.Hold("k", tupleFor("k")) {
		t.Fatal("Hold succeeded for non-pending key")
	}

	b.Expect([]string{"k", "j"})
	if !b.Pending("k") || !b.Pending("j") {
		t.Fatal("Expect did not mark keys")
	}
	if b.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d, want 2", b.PendingCount())
	}

	if !b.Hold("k", tupleFor("k")) {
		t.Fatal("Hold failed for pending key")
	}
	if !b.Hold("k", tupleFor("k")) {
		t.Fatal("second Hold failed")
	}
	if b.BufferedCount() != 2 {
		t.Fatalf("BufferedCount = %d, want 2", b.BufferedCount())
	}

	held := b.Arrive("k")
	if len(held) != 2 {
		t.Fatalf("Arrive returned %d tuples, want 2", len(held))
	}
	if b.Pending("k") {
		t.Fatal("key still pending after Arrive")
	}
	// j arrives with no buffered tuples.
	if held := b.Arrive("j"); held != nil {
		t.Fatalf("Arrive(j) = %v, want nil", held)
	}
	if b.PendingCount() != 0 {
		t.Fatal("buffer not empty at end")
	}
	// Arriving for an unknown key is a no-op.
	if held := b.Arrive("zzz"); held != nil {
		t.Fatal("Arrive on unknown key returned tuples")
	}
}

func TestBufferExpectIdempotent(t *testing.T) {
	b := NewBuffer()
	b.Expect([]string{"k"})
	b.Hold("k", tupleFor("k"))
	b.Expect([]string{"k"}) // must not clear buffered tuples
	if got := len(b.Arrive("k")); got != 1 {
		t.Fatalf("Arrive returned %d tuples, want 1", got)
	}
}

func TestBufferPendingKeysSorted(t *testing.T) {
	b := NewBuffer()
	b.Expect([]string{"z", "a", "m"})
	keys := b.PendingKeys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "m" || keys[2] != "z" {
		t.Fatalf("PendingKeys() = %v", keys)
	}
}
