package state

import (
	"testing"

	"github.com/locastream/locastream/internal/topology"
)

func tupleFor(key string) topology.Tuple {
	return topology.Tuple{Values: []string{key}}
}

func TestExtractAndInstall(t *testing.T) {
	src := topology.NewCounter(0)
	for i := 0; i < 3; i++ {
		src.Process(tupleFor("a"), func(topology.Tuple) {})
	}
	src.Process(tupleFor("b"), func(topology.Tuple) {})

	states := Extract(src, []string{"a", "missing"})
	if len(states) != 2 {
		t.Fatalf("Extract returned %d entries, want 2", len(states))
	}
	if states["a"] == nil {
		t.Fatal("state for a missing")
	}
	if states["missing"] != nil {
		t.Fatal("state for missing key should be nil")
	}
	// Extract must remove migrated state from the source.
	if src.Count("a") != 0 {
		t.Fatalf("source still has count %d for a", src.Count("a"))
	}
	if src.Count("b") != 1 {
		t.Fatal("unrelated key b was touched")
	}

	dst := topology.NewCounter(0)
	if err := Install(dst, states); err != nil {
		t.Fatal(err)
	}
	if dst.Count("a") != 3 {
		t.Fatalf("dst count a = %d, want 3", dst.Count("a"))
	}
	if dst.Count("missing") != 0 {
		t.Fatal("nil payload should not create state")
	}
}

func TestInstallBadPayload(t *testing.T) {
	dst := topology.NewCounter(0)
	err := Install(dst, map[string][]byte{"k": {1, 2}})
	if err == nil {
		t.Fatal("Install accepted malformed payload")
	}
}

func TestBufferLifecycle(t *testing.T) {
	b := NewBuffer()
	if b.Pending("k") {
		t.Fatal("fresh buffer has pending key")
	}
	if b.Hold("k", tupleFor("k")) {
		t.Fatal("Hold succeeded for non-pending key")
	}

	b.Expect([]string{"k", "j"})
	if !b.Pending("k") || !b.Pending("j") {
		t.Fatal("Expect did not mark keys")
	}
	if b.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d, want 2", b.PendingCount())
	}

	if !b.Hold("k", tupleFor("k")) {
		t.Fatal("Hold failed for pending key")
	}
	if !b.Hold("k", tupleFor("k")) {
		t.Fatal("second Hold failed")
	}
	if b.BufferedCount() != 2 {
		t.Fatalf("BufferedCount = %d, want 2", b.BufferedCount())
	}

	held := b.Arrive("k")
	if len(held) != 2 {
		t.Fatalf("Arrive returned %d tuples, want 2", len(held))
	}
	if b.Pending("k") {
		t.Fatal("key still pending after Arrive")
	}
	// j arrives with no buffered tuples.
	if held := b.Arrive("j"); held != nil {
		t.Fatalf("Arrive(j) = %v, want nil", held)
	}
	if b.PendingCount() != 0 {
		t.Fatal("buffer not empty at end")
	}
	// Arriving for an unknown key is a no-op.
	if held := b.Arrive("zzz"); held != nil {
		t.Fatal("Arrive on unknown key returned tuples")
	}
}

func TestBufferExpectIdempotent(t *testing.T) {
	b := NewBuffer()
	b.Expect([]string{"k"})
	b.Hold("k", tupleFor("k"))
	b.Expect([]string{"k"}) // must not clear buffered tuples
	if got := len(b.Arrive("k")); got != 1 {
		t.Fatalf("Arrive returned %d tuples, want 1", got)
	}
}

// TestBufferStateNeverArrives models the recovery scenario the
// fault-tolerance subsystem relies on: the sender of a key's state died,
// so tuples keep accumulating until the recovery path finally delivers a
// (possibly empty) restore. Nothing must be lost in an unbounded buffer,
// and the pending marker must survive arbitrarily many Hold calls.
func TestBufferStateNeverArrives(t *testing.T) {
	b := NewBuffer()
	b.Expect([]string{"orphan"})
	for i := 0; i < 1000; i++ {
		if !b.Hold("orphan", tupleFor("orphan")) {
			t.Fatalf("Hold rejected tuple %d for pending key", i)
		}
	}
	if b.BufferedCount() != 1000 {
		t.Fatalf("BufferedCount = %d, want 1000", b.BufferedCount())
	}
	if b.Dropped() != 0 {
		t.Fatalf("unbounded buffer dropped %d tuples", b.Dropped())
	}
	// The recovery path eventually synthesizes an Arrive (with or without
	// checkpointed state); every buffered tuple must come back.
	if got := len(b.Arrive("orphan")); got != 1000 {
		t.Fatalf("Arrive returned %d tuples, want 1000", got)
	}
	if b.PendingCount() != 0 || b.BufferedCount() != 0 {
		t.Fatal("buffer not empty after recovery arrive")
	}
}

func TestBufferBounded(t *testing.T) {
	b := NewBuffer()
	b.SetLimit(3)
	b.Expect([]string{"k", "j"})
	for i := 0; i < 5; i++ {
		if !b.Hold("k", tupleFor("k")) {
			t.Fatal("Hold must consume tuples for pending keys even when full")
		}
	}
	if b.BufferedCount() != 3 {
		t.Fatalf("BufferedCount = %d, want 3 (limit)", b.BufferedCount())
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", b.Dropped())
	}
	// The limit is shared across keys: j cannot buffer while k holds it.
	b.Hold("j", tupleFor("j"))
	if b.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3 after cross-key overflow", b.Dropped())
	}
	// Draining k frees capacity for j again.
	if got := len(b.Arrive("k")); got != 3 {
		t.Fatalf("Arrive(k) returned %d tuples, want 3", got)
	}
	if !b.Hold("j", tupleFor("j")) || b.BufferedCount() != 1 {
		t.Fatal("capacity not reclaimed after Arrive")
	}
	if got := b.TakeDropped(); got != 3 {
		t.Fatalf("TakeDropped = %d, want 3", got)
	}
	if b.Dropped() != 0 {
		t.Fatal("TakeDropped did not reset the counter")
	}
}

// TestBufferDrainOrdering verifies tuples come back in exact arrival
// order per key — the reconfiguration protocol's FIFO argument depends on
// replaying held tuples in the order the stream delivered them.
func TestBufferDrainOrdering(t *testing.T) {
	b := NewBuffer()
	b.Expect([]string{"k"})
	for i := 0; i < 50; i++ {
		b.Hold("k", topology.Tuple{Values: []string{"k", string(rune('a' + i%26))}, Padding: i})
	}
	held := b.Arrive("k")
	if len(held) != 50 {
		t.Fatalf("Arrive returned %d tuples, want 50", len(held))
	}
	for i, tp := range held {
		if tp.Padding != i {
			t.Fatalf("tuple %d has padding %d: drain order not FIFO", i, tp.Padding)
		}
	}
}

func TestBufferPendingKeysSorted(t *testing.T) {
	b := NewBuffer()
	b.Expect([]string{"z", "a", "m"})
	keys := b.PendingKeys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "m" || keys[2] != "z" {
		t.Fatalf("PendingKeys() = %v", keys)
	}
}
