// Package state provides the key-state migration machinery used by the
// online reconfiguration protocol (§3.4 of Caneill et al.,
// Middleware'16): extracting and installing per-key operator state, and
// buffering tuples that arrive for a key whose state has not been
// received yet ("tuples are buffered and are only processed once the
// state of their key is received").
package state

import (
	"fmt"
	"sort"

	"github.com/locastream/locastream/internal/topology"
)

// Extract snapshots the state of the given keys from a keyed processor.
// Keys without state are returned with nil data so the recipient can
// still clear its pending marker (the protocol sends one migration record
// per planned key, with or without payload).
func Extract(p topology.Keyed, keys []string) map[string][]byte {
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if data, ok := p.SnapshotKey(k); ok {
			out[k] = data
			p.DeleteKey(k)
		} else {
			out[k] = nil
		}
	}
	return out
}

// Install restores migrated state into a keyed processor. Nil payloads
// mark keys that had no state at the sender and are skipped.
func Install(p topology.Keyed, states map[string][]byte) error {
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		data := states[k]
		if data == nil {
			continue
		}
		if err := p.RestoreKey(k, data); err != nil {
			return fmt.Errorf("install state for key %q: %w", k, err)
		}
	}
	return nil
}

// Buffer holds tuples whose key state is expected from another instance.
// It is not safe for concurrent use; each executor owns one.
//
// A Buffer may be bounded with SetLimit: once the total number of held
// tuples reaches the limit, further tuples are dropped and counted
// instead of accumulated. An unbounded buffer is only safe when the
// expected state is guaranteed to arrive promptly; during failure
// recovery the sender may be dead and the restore delayed, so the
// engine bounds the buffer and accounts the overflow as lost tuples.
type Buffer struct {
	pending map[string][]topology.Tuple
	held    int
	limit   int
	dropped uint64
}

// NewBuffer returns an empty, unbounded migration buffer.
func NewBuffer() *Buffer {
	return &Buffer{pending: make(map[string][]topology.Tuple)}
}

// SetLimit bounds the total number of tuples the buffer will hold across
// all pending keys (0 restores unbounded behaviour). Tuples held while
// the buffer is full are dropped and counted (see Dropped).
func (b *Buffer) SetLimit(n int) { b.limit = n }

// Dropped returns the number of tuples discarded because the buffer was
// full.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// TakeDropped returns the drop count accumulated since the last call and
// resets it, letting the owner fold the losses into its own accounting.
func (b *Buffer) TakeDropped() uint64 {
	d := b.dropped
	b.dropped = 0
	return d
}

// Expect marks keys whose state is in flight. Tuples for those keys must
// be buffered until Arrive is called.
func (b *Buffer) Expect(keys []string) {
	for _, k := range keys {
		if _, ok := b.pending[k]; !ok {
			b.pending[k] = nil
		}
	}
}

// Pending reports whether key is awaiting state.
func (b *Buffer) Pending(key string) bool {
	_, ok := b.pending[key]
	return ok
}

// PendingCount returns the number of keys still awaiting state.
func (b *Buffer) PendingCount() int { return len(b.pending) }

// BufferedCount returns the total number of buffered tuples.
func (b *Buffer) BufferedCount() int { return b.held }

// Hold stores a tuple for a pending key. It reports whether the key was
// pending (false means the caller should process the tuple normally).
// When the buffer is at its limit the tuple is consumed but dropped
// rather than held; the caller observes the loss through Dropped.
func (b *Buffer) Hold(key string, t topology.Tuple) bool {
	ts, ok := b.pending[key]
	if !ok {
		return false
	}
	if b.limit > 0 && b.held >= b.limit {
		b.dropped++
		return true
	}
	b.pending[key] = append(ts, t)
	b.held++
	return true
}

// Arrive clears the pending marker for key and returns the tuples held
// for it, in arrival order.
func (b *Buffer) Arrive(key string) []topology.Tuple {
	ts, ok := b.pending[key]
	if !ok {
		return nil
	}
	delete(b.pending, key)
	b.held -= len(ts)
	return ts
}

// PendingKeys returns the sorted keys still awaiting state (for tests and
// debugging).
func (b *Buffer) PendingKeys() []string {
	keys := make([]string, 0, len(b.pending))
	for k := range b.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
