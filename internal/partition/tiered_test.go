package partition

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomGraph builds a connected-ish random graph: n unit-weight
// vertices, ~2n random edges with weights in [1, 50].
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := &Graph{Weights: make([]uint64, n), Adj: make([][]Adj, n)}
	for i := range g.Weights {
		g.Weights[i] = 1 + uint64(rng.Intn(4))
	}
	addEdge := func(u, v int, w uint64) {
		g.Adj[u] = append(g.Adj[u], Adj{To: v, Weight: w})
		g.Adj[v] = append(g.Adj[v], Adj{To: u, Weight: w})
	}
	for i := 1; i < n; i++ {
		addEdge(i, rng.Intn(i), 1+uint64(rng.Intn(50)))
	}
	for e := 0; e < n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			addEdge(u, v, 1+uint64(rng.Intn(50)))
		}
	}
	return g
}

func TestTieredValidation(t *testing.T) {
	g := pathGraph(8)
	if _, err := Tiered(nil, []int{0}, []int{0}, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Tiered(g, nil, []int{0, 0}, Options{}); err == nil {
		t.Error("no rack assignment accepted")
	}
	if _, err := Tiered(g, []int{0, 0}, nil, Options{}); err == nil {
		t.Error("no cluster assignment accepted")
	}
	if _, err := Tiered(g, []int{0, 0}, []int{0}, Options{}); err == nil {
		t.Error("rack/cluster length mismatch accepted")
	}
	if _, err := Tiered(g, []int{0, 0}, []int{0, -1}, Options{}); err == nil {
		t.Error("negative cluster accepted")
	}
	if _, err := Tiered(g, []int{0, 0}, []int{0, 2}, Options{}); err == nil {
		t.Error("empty cluster accepted")
	}
}

// TestTieredSingleClusterEqualsFlat is the degeneracy property the
// federation refactor must preserve: with one cluster and one rack the
// two-level partition is byte-identical to the flat partition — same
// Parts, same CutWeight, same PartWeights — over randomized seeded key
// graphs. No topology information means no behavior change.
func TestTieredSingleClusterEqualsFlat(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		servers := 2 + rng.Intn(6)
		n := servers * (5 + rng.Intn(40))
		g := randomGraph(rng, n)
		rackOf := make([]int, servers)
		clusterOf := make([]int, servers)
		opts := Options{Seed: int64(trial) * 31, Alpha: 1.03}

		flat, err := Partition(g, withK(opts, servers))
		if err != nil {
			t.Fatalf("trial %d: flat: %v", trial, err)
		}
		tiered, err := Tiered(g, rackOf, clusterOf, opts)
		if err != nil {
			t.Fatalf("trial %d: tiered: %v", trial, err)
		}
		if !reflect.DeepEqual(flat.Parts, tiered.Parts) {
			t.Fatalf("trial %d (servers=%d, n=%d): tiered Parts diverge from flat", trial, servers, n)
		}
		if flat.CutWeight != tiered.CutWeight {
			t.Fatalf("trial %d: CutWeight %d != %d", trial, tiered.CutWeight, flat.CutWeight)
		}
		if !reflect.DeepEqual(flat.PartWeights, tiered.PartWeights) {
			t.Fatalf("trial %d: PartWeights diverge", trial)
		}
	}
}

// One cluster with several racks must likewise collapse to the
// rack-hierarchical partition exactly.
func TestTieredSingleClusterEqualsHierarchical(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		servers := 4 + rng.Intn(4)
		n := servers * (10 + rng.Intn(30))
		g := randomGraph(rng, n)
		rackOf := make([]int, servers)
		for s := range rackOf {
			rackOf[s] = s % 2
		}
		clusterOf := make([]int, servers)
		opts := Options{Seed: int64(trial) * 17, Alpha: 1.03}

		hier, err := Hierarchical(g, rackOf, opts)
		if err != nil {
			t.Fatalf("trial %d: hierarchical: %v", trial, err)
		}
		tiered, err := Tiered(g, rackOf, clusterOf, opts)
		if err != nil {
			t.Fatalf("trial %d: tiered: %v", trial, err)
		}
		if !reflect.DeepEqual(hier.Parts, tiered.Parts) {
			t.Fatalf("trial %d: tiered Parts diverge from hierarchical", trial)
		}
	}
}

func TestTieredPrefersIntraClusterCut(t *testing.T) {
	// Four key communities chained by light links; 4 servers in 2
	// clusters of 2 racks. Any 4-way split cuts 3 light edges; the
	// two-level split must put at most 1 of them between clusters.
	g := clustersGraph(4, 6, 100, 1)
	rackOf := []int{0, 1, 2, 3}
	clusterOf := []int{0, 0, 1, 1}
	res, err := Tiered(g, rackOf, clusterOf, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 4)
	if res.CutWeight != 3 {
		t.Fatalf("CutWeight = %d, want 3 (inter-community edges)", res.CutWeight)
	}
	if interCluster := CutBetweenClusters(g, res.Parts, clusterOf); interCluster > 1 {
		t.Fatalf("inter-cluster cut = %d, want <= 1", interCluster)
	}
	// Each community stays whole on one server.
	for c := 0; c < 4; c++ {
		p := res.Parts[c*6]
		for i := 1; i < 6; i++ {
			if res.Parts[c*6+i] != p {
				t.Fatalf("community %d split", c)
			}
		}
	}
}

func TestTieredUnequalClusters(t *testing.T) {
	// 3 servers: cluster 0 has two, cluster 1 has one. Isolated unit
	// vertices must split roughly 2:1 across clusters.
	n := 30
	g := &Graph{Weights: make([]uint64, n), Adj: make([][]Adj, n)}
	for i := range g.Weights {
		g.Weights[i] = 1
	}
	rackOf := []int{0, 1, 0}
	clusterOf := []int{0, 0, 1}
	res, err := Tiered(g, rackOf, clusterOf, Options{Seed: 5, Alpha: 1.03})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 3)
	clusterLoad := make([]uint64, 2)
	for _, p := range res.Parts {
		clusterLoad[clusterOf[p]]++
	}
	if clusterLoad[0] < 18 || clusterLoad[0] > 22 {
		t.Fatalf("cluster 0 load = %d, want ~20 of 30", clusterLoad[0])
	}
}

// Sparse rack numbering within clusters must be tolerated: the level-2
// subproblem renumbers each cluster's racks densely.
func TestTieredSparseRackNumbers(t *testing.T) {
	g := clustersGraph(4, 8, 50, 1)
	rackOf := []int{0, 0, 5, 7} // racks 1-4 and 6 unused
	clusterOf := []int{0, 0, 1, 1}
	res, err := Tiered(g, rackOf, clusterOf, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 4)
}

func TestCutBetweenClusters(t *testing.T) {
	g := pathGraph(4)
	parts := []int{0, 1, 2, 3}
	clusterOf := []int{0, 0, 1, 1}
	// Edges: 0-1 (same cluster), 1-2 (cross), 2-3 (same cluster).
	if got := CutBetweenClusters(g, parts, clusterOf); got != 1 {
		t.Fatalf("CutBetweenClusters = %d, want 1", got)
	}
}
