// Package partition implements a multilevel k-way graph partitioner in the
// spirit of Metis (Karypis & Kumar, SIAM J. Sci. Comput. 1998), which the
// reproduced paper uses to split the bipartite key graph across servers.
//
// The algorithm follows the classic three phases:
//
//  1. Coarsening: repeated heavy-edge matching collapses matched vertex
//     pairs until the graph is small.
//  2. Initial partitioning: greedy balanced assignment of the coarse
//     vertices in descending weight order, preferring the part with the
//     strongest connection.
//  3. Uncoarsening: the partition is projected back level by level and
//     improved with Fiduccia–Mattheyses-style boundary refinement under
//     the balance constraint load(part) <= alpha * total / k.
//
// The partitioner is deterministic for a fixed Options.Seed.
package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Adj is one adjacency entry of the input graph.
type Adj struct {
	// To is the neighbour vertex index.
	To int
	// Weight is the edge weight (co-occurrence count).
	Weight uint64
}

// Graph is the partitioner input: a symmetric weighted graph in adjacency
// list form. Adj[u] must contain an entry {v, w} exactly when Adj[v]
// contains {u, w}. Parallel entries to the same neighbour are allowed and
// treated additively.
type Graph struct {
	// Weights holds one non-negative weight per vertex.
	Weights []uint64
	// Adj holds the adjacency list of each vertex.
	Adj [][]Adj
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Weights) }

// TotalWeight returns the sum of vertex weights.
func (g *Graph) TotalWeight() uint64 {
	var t uint64
	for _, w := range g.Weights {
		t += w
	}
	return t
}

// Options configures Partition.
type Options struct {
	// K is the number of parts (servers). Must be >= 1.
	K int
	// Alpha is the imbalance bound: every part's vertex weight must stay
	// below Alpha * total / K whenever feasible. Values < 1 are raised
	// to 1. The paper uses Metis' default of 1.03.
	Alpha float64
	// Seed makes tie-breaking deterministic.
	Seed int64
	// Rand, when non-nil, supplies the tie-breaking randomness instead of
	// a Seed-derived source. Threading an explicit *rand.Rand makes a
	// sequence of related plans (e.g. the churn and skew drills, or the
	// per-rack sub-partitions of Hierarchical) reproducible end to end:
	// the caller owns the stream of random values, so identical inputs
	// yield identical plans across runs and test processes. The generator
	// is consumed sequentially and must not be shared with concurrent
	// callers.
	Rand *rand.Rand
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices. Zero selects max(64, 16*K).
	CoarsenTo int
	// RefinePasses bounds the number of refinement sweeps per level.
	// Zero selects 8; negative values disable refinement entirely
	// (useful for ablations).
	RefinePasses int
	// TargetFractions optionally sets unequal part sizes: part p may
	// hold up to Alpha * total * TargetFractions[p] vertex weight. nil
	// means uniform (1/K each). Must have length K and sum to ~1.
	TargetFractions []float64
	// Pinned optionally fixes vertices to parts: Pinned[v] == p >= 0
	// forces vertex v into part p (it is never moved by any phase),
	// while -1 leaves v free. nil means all vertices are free. Must
	// have length NumVertices. Pinning disables coarsening, so it is
	// meant for small graphs — e.g. failure-recovery repair, where the
	// dead server's keys are free and their surviving neighbours are
	// pinned in place so only the failed keys move.
	Pinned []int
}

// DefaultAlpha is the balance bound used by the paper (Metis default).
const DefaultAlpha = 1.03

// Result is the output of Partition.
type Result struct {
	// Parts assigns each input vertex to a part in [0, K).
	Parts []int
	// CutWeight is the total weight of edges whose endpoints are in
	// different parts.
	CutWeight uint64
	// PartWeights is the vertex weight of each part.
	PartWeights []uint64
	// Imbalance is max(PartWeights) / (total/K); 1.0 is perfect.
	Imbalance float64
}

// ErrBadGraph reports a malformed input graph.
var ErrBadGraph = errors.New("partition: malformed graph")

// Partition splits g into opts.K parts minimizing edge cut under the
// balance constraint.
func Partition(g *Graph, opts Options) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("partition: K = %d, want >= 1", opts.K)
	}
	if opts.TargetFractions != nil {
		if len(opts.TargetFractions) != opts.K {
			return nil, fmt.Errorf("partition: %d target fractions for K = %d",
				len(opts.TargetFractions), opts.K)
		}
		for p, f := range opts.TargetFractions {
			if f <= 0 {
				return nil, fmt.Errorf("partition: target fraction %f for part %d", f, p)
			}
		}
	}
	if opts.Pinned != nil {
		if len(opts.Pinned) != g.NumVertices() {
			return nil, fmt.Errorf("partition: %d pins for %d vertices",
				len(opts.Pinned), g.NumVertices())
		}
		for v, p := range opts.Pinned {
			if p < -1 || p >= opts.K {
				return nil, fmt.Errorf("partition: vertex %d pinned to part %d, want [-1, %d)",
					v, p, opts.K)
			}
		}
	}
	if opts.Alpha < 1 {
		opts.Alpha = 1
	}
	if opts.CoarsenTo <= 0 {
		opts.CoarsenTo = 16 * opts.K
		if opts.CoarsenTo < 64 {
			opts.CoarsenTo = 64
		}
	}
	switch {
	case opts.RefinePasses == 0:
		opts.RefinePasses = 8
	case opts.RefinePasses < 0:
		opts.RefinePasses = 0
	}

	n := g.NumVertices()
	if n == 0 {
		return &Result{Parts: []int{}, PartWeights: make([]uint64, opts.K), Imbalance: 0}, nil
	}
	if opts.K == 1 {
		parts := make([]int, n)
		return summarize(g, parts, 1), nil
	}

	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(opts.Seed))
	}

	// Phase 1: coarsen. Pinned graphs skip this phase: collapsing a
	// pinned vertex with a free (or differently pinned) one would make
	// the constraint unrepresentable, and pinned inputs are small repair
	// graphs anyway.
	levels := []*level{{g: normalize(g)}}
	if opts.Pinned == nil {
		for levels[len(levels)-1].g.NumVertices() > opts.CoarsenTo {
			cur := levels[len(levels)-1]
			next, ok := coarsen(cur.g, rng)
			if !ok {
				break // no further shrink possible
			}
			cur.coarseMap = next.fineToCoarse
			levels = append(levels, &level{g: next.g})
		}
	}

	// Phase 2: initial partition of the coarsest level.
	coarse := levels[len(levels)-1]
	parts := initialPartition(coarse.g, opts, rng)

	// Phase 3: refine and project back.
	parts = refine(coarse.g, parts, opts)
	for i := len(levels) - 2; i >= 0; i-- {
		lvl := levels[i]
		fineParts := make([]int, lvl.g.NumVertices())
		for v := range fineParts {
			fineParts[v] = parts[lvl.coarseMap[v]]
		}
		parts = refine(lvl.g, fineParts, opts)
	}

	return summarize(g, parts, opts.K), nil
}

type level struct {
	g         *Graph
	coarseMap []int // fine vertex -> coarse vertex at the next level
}

func validate(g *Graph) error {
	if g == nil {
		return fmt.Errorf("%w: nil graph", ErrBadGraph)
	}
	if len(g.Adj) != len(g.Weights) {
		return fmt.Errorf("%w: %d weights but %d adjacency lists", ErrBadGraph, len(g.Weights), len(g.Adj))
	}
	n := len(g.Weights)
	for u, list := range g.Adj {
		for _, a := range list {
			if a.To < 0 || a.To >= n {
				return fmt.Errorf("%w: vertex %d has neighbour %d out of range", ErrBadGraph, u, a.To)
			}
			if a.To == u {
				return fmt.Errorf("%w: vertex %d has a self-loop", ErrBadGraph, u)
			}
		}
	}
	return nil
}

// normalize merges parallel adjacency entries so downstream code can
// assume at most one entry per neighbour.
func normalize(g *Graph) *Graph {
	out := &Graph{
		Weights: append([]uint64(nil), g.Weights...),
		Adj:     make([][]Adj, len(g.Adj)),
	}
	for u, list := range g.Adj {
		if len(list) == 0 {
			continue
		}
		m := make(map[int]uint64, len(list))
		for _, a := range list {
			m[a.To] += a.Weight
		}
		merged := make([]Adj, 0, len(m))
		for to, w := range m {
			merged = append(merged, Adj{To: to, Weight: w})
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i].To < merged[j].To })
		out.Adj[u] = merged
	}
	return out
}

type coarseResult struct {
	g            *Graph
	fineToCoarse []int
}

// coarsen performs one level of heavy-edge matching. Returns ok == false
// when the graph cannot shrink (no edges left or matching degenerate).
func coarsen(g *Graph, rng *rand.Rand) (coarseResult, bool) {
	n := g.NumVertices()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	// Visit vertices in random order; match each unmatched vertex with
	// its heaviest unmatched neighbour.
	order := rng.Perm(n)
	matched := 0
	for _, u := range order {
		if match[u] != -1 {
			continue
		}
		best, bestW := -1, uint64(0)
		for _, a := range g.Adj[u] {
			if match[a.To] == -1 && a.To != u && a.Weight >= bestW {
				if a.Weight > bestW || best == -1 || a.To < best {
					best, bestW = a.To, a.Weight
				}
			}
		}
		if best != -1 {
			match[u] = best
			match[best] = u
			matched += 2
		}
	}
	if matched == 0 {
		return coarseResult{}, false
	}

	fineToCoarse := make([]int, n)
	coarseCount := 0
	for u := 0; u < n; u++ {
		if match[u] == -1 || match[u] > u {
			fineToCoarse[u] = coarseCount
			coarseCount++
		}
	}
	for u := 0; u < n; u++ {
		if match[u] != -1 && match[u] < u {
			fineToCoarse[u] = fineToCoarse[match[u]]
		}
	}
	if coarseCount >= n {
		return coarseResult{}, false
	}

	cg := &Graph{
		Weights: make([]uint64, coarseCount),
		Adj:     make([][]Adj, coarseCount),
	}
	edgeAcc := make([]map[int]uint64, coarseCount)
	for u := 0; u < n; u++ {
		cu := fineToCoarse[u]
		cg.Weights[cu] += g.Weights[u]
		for _, a := range g.Adj[u] {
			cv := fineToCoarse[a.To]
			if cu == cv {
				continue
			}
			if edgeAcc[cu] == nil {
				edgeAcc[cu] = make(map[int]uint64)
			}
			edgeAcc[cu][cv] += a.Weight
		}
	}
	for cu, m := range edgeAcc {
		list := make([]Adj, 0, len(m))
		for cv, w := range m {
			list = append(list, Adj{To: cv, Weight: w})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].To < list[j].To })
		cg.Adj[cu] = list
	}
	return coarseResult{g: cg, fineToCoarse: fineToCoarse}, true
}

// initialPartition assigns coarse vertices greedily: descending weight
// order, each vertex goes to the part with the strongest existing
// connection among parts that stay under the cap, falling back to the
// lightest part. Pinned vertices are placed first, unconditionally, so
// free vertices gravitate toward their pinned neighbours.
func initialPartition(g *Graph, opts Options, rng *rand.Rand) []int {
	n := g.NumVertices()
	parts := make([]int, n)
	for i := range parts {
		parts[i] = -1
	}
	loads := make([]uint64, opts.K)
	caps := capsFor(g.TotalWeight(), opts)

	if opts.Pinned != nil {
		for u, p := range opts.Pinned {
			if p >= 0 {
				parts[u] = p
				loads[p] += g.Weights[u]
			}
		}
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Shuffle first so equal-weight ties are seed-dependent but
	// deterministic, then stable sort by descending weight.
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	sort.SliceStable(order, func(i, j int) bool {
		return g.Weights[order[i]] > g.Weights[order[j]]
	})

	gain := make([]uint64, opts.K)
	for _, u := range order {
		if parts[u] >= 0 {
			continue // pinned, already placed
		}
		for p := range gain {
			gain[p] = 0
		}
		for _, a := range g.Adj[u] {
			if pv := parts[a.To]; pv >= 0 {
				gain[pv] += a.Weight
			}
		}
		best := -1
		var bestGain uint64
		for p := 0; p < opts.K; p++ {
			if loads[p]+g.Weights[u] > caps[p] {
				continue
			}
			if best == -1 || gain[p] > bestGain ||
				(gain[p] == bestGain && loads[p] < loads[best]) {
				best, bestGain = p, gain[p]
			}
		}
		if best == -1 {
			// Nothing fits under the cap (a single huge vertex);
			// place on the lightest part.
			best = 0
			for p := 1; p < opts.K; p++ {
				if loads[p] < loads[best] {
					best = p
				}
			}
		}
		parts[u] = best
		loads[best] += g.Weights[u]
	}
	return parts
}

// refine improves parts with Fiduccia–Mattheyses passes: within a pass
// every vertex may move once (possibly with negative gain) and the best
// prefix of the move sequence is kept. Moves must respect the balance cap
// except when they drain an overloaded part.
func refine(g *Graph, parts []int, opts Options) []int {
	loads := make([]uint64, opts.K)
	for v, p := range parts {
		loads[p] += g.Weights[v]
	}
	caps := capsFor(g.TotalWeight(), opts)

	for pass := 0; pass < opts.RefinePasses; pass++ {
		if fmPass(g, parts, loads, caps, opts.K, opts.Pinned) == 0 {
			break
		}
	}

	// Balance repair: if any part exceeds the cap (possible right after
	// projection), move its lowest-connectivity boundary vertices out.
	rebalance(g, parts, loads, caps, opts.K, opts.Pinned)
	return parts
}

// fmMove records one applied tentative move for possible rollback.
type fmMove struct {
	v        int
	from, to int
}

// fmPass runs one FM sweep and returns the kept cut improvement (0 when
// the pass achieved nothing and refinement should stop). Pinned
// vertices start locked and never move.
func fmPass(g *Graph, parts []int, loads []uint64, caps []uint64, k int, pinned []int) int64 {
	n := g.NumVertices()
	locked := make([]bool, n)
	if pinned != nil {
		for v, p := range pinned {
			if p >= 0 {
				locked[v] = true
			}
		}
	}
	conn := make([]uint64, k)

	// Tentative moves may overshoot the cap by one maximum vertex weight
	// (the classic FM tolerance); rebalance repairs any kept overshoot.
	var maxW uint64
	for _, w := range g.Weights {
		if w > maxW {
			maxW = w
		}
	}

	// bestMove computes the most attractive target part for v under the
	// balance constraint; ok is false when v has no feasible move.
	bestMove := func(v int) (to int, gain int64, ok bool) {
		if len(g.Adj[v]) == 0 {
			return 0, 0, false
		}
		from := parts[v]
		for p := range conn {
			conn[p] = 0
		}
		for _, a := range g.Adj[v] {
			conn[parts[a.To]] += a.Weight
		}
		to = -1
		for p := 0; p < k; p++ {
			if p == from {
				continue
			}
			if loads[p]+g.Weights[v] > caps[p]+maxW && loads[from] <= caps[from] {
				continue
			}
			gp := int64(conn[p]) - int64(conn[from])
			if to == -1 || gp > gain || (gp == gain && loads[p] < loads[to]) {
				to, gain = p, gp
			}
		}
		return to, gain, to != -1
	}

	h := &moveHeap{}
	stamp := make([]uint64, n)
	push := func(v int) {
		if locked[v] {
			return
		}
		if to, gain, ok := bestMove(v); ok {
			stamp[v]++
			h.push(moveCand{v: v, to: to, gain: gain, stamp: stamp[v]})
		}
	}
	for v := 0; v < n; v++ {
		push(v)
	}

	var (
		moves        []fmMove
		cum, bestCum int64
		bestLen      int
		budget       = n
	)
	for budget > 0 && h.len() > 0 {
		c := h.pop()
		if locked[c.v] || c.stamp != stamp[c.v] {
			continue
		}
		to, gain, ok := bestMove(c.v)
		if !ok {
			continue
		}
		if gain != c.gain || to != c.to {
			stamp[c.v]++
			h.push(moveCand{v: c.v, to: to, gain: gain, stamp: stamp[c.v]})
			continue
		}
		// Apply the tentative move and lock the vertex.
		from := parts[c.v]
		parts[c.v] = to
		loads[from] -= g.Weights[c.v]
		loads[to] += g.Weights[c.v]
		locked[c.v] = true
		moves = append(moves, fmMove{v: c.v, from: from, to: to})
		cum += gain
		if cum > bestCum {
			bestCum, bestLen = cum, len(moves)
		}
		budget--
		// Neighbours' gains changed; refresh their candidates.
		for _, a := range g.Adj[c.v] {
			push(a.To)
		}
	}

	// Roll back every move after the best prefix.
	for i := len(moves) - 1; i >= bestLen; i-- {
		m := moves[i]
		parts[m.v] = m.from
		loads[m.to] -= g.Weights[m.v]
		loads[m.from] += g.Weights[m.v]
	}
	return bestCum
}

// moveCand is a prioritized tentative move.
type moveCand struct {
	v     int
	to    int
	gain  int64
	stamp uint64
}

// moveHeap is a max-heap of candidates by gain (lazy deletion via stamp).
type moveHeap struct {
	items []moveCand
}

func (h *moveHeap) len() int { return len(h.items) }

func (h *moveHeap) push(c moveCand) {
	h.items = append(h.items, c)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].gain >= h.items[i].gain {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *moveHeap) pop() moveCand {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < last && h.items[l].gain > h.items[largest].gain {
			largest = l
		}
		if r < last && h.items[r].gain > h.items[largest].gain {
			largest = r
		}
		if largest == i {
			break
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
	return top
}

// rebalance moves vertices from overloaded parts to the lightest feasible
// part, choosing moves that lose the least connectivity first. Pinned
// vertices stay put even when their part is overloaded.
func rebalance(g *Graph, parts []int, loads []uint64, caps []uint64, k int, pinned []int) {
	for p := 0; p < k; p++ {
		guard := 0
		for loads[p] > caps[p] && guard < g.NumVertices() {
			guard++
			// Pick the vertex in p whose move costs the least cut.
			bestV, bestTo := -1, -1
			bestCost := int64(1<<62 - 1)
			for v := 0; v < g.NumVertices(); v++ {
				if parts[v] != p {
					continue
				}
				if pinned != nil && pinned[v] >= 0 {
					continue
				}
				var internal uint64
				ext := make([]uint64, k)
				for _, a := range g.Adj[v] {
					if parts[a.To] == p {
						internal += a.Weight
					} else {
						ext[parts[a.To]] += a.Weight
					}
				}
				for q := 0; q < k; q++ {
					if q == p || loads[q]+g.Weights[v] > caps[q] {
						continue
					}
					cost := int64(internal) - int64(ext[q])
					if cost < bestCost || (cost == bestCost && bestV == -1) {
						bestV, bestTo, bestCost = v, q, cost
					}
				}
			}
			if bestV == -1 {
				break // no feasible move; accept the imbalance
			}
			loads[p] -= g.Weights[bestV]
			loads[bestTo] += g.Weights[bestV]
			parts[bestV] = bestTo
		}
	}
}

// capsFor computes the per-part weight limits, honouring unequal target
// fractions when configured.
func capsFor(total uint64, opts Options) []uint64 {
	caps := make([]uint64, opts.K)
	for p := range caps {
		frac := 1.0 / float64(opts.K)
		if opts.TargetFractions != nil {
			frac = opts.TargetFractions[p]
		}
		c := uint64(opts.Alpha * float64(total) * frac)
		if c == 0 {
			c = 1
		}
		caps[p] = c
	}
	return caps
}

// summarize computes the result statistics for a final assignment.
func summarize(g *Graph, parts []int, k int) *Result {
	res := &Result{Parts: parts, PartWeights: make([]uint64, k)}
	for v, p := range parts {
		res.PartWeights[p] += g.Weights[v]
	}
	for u, list := range g.Adj {
		for _, a := range list {
			if a.To > u && parts[a.To] != parts[u] {
				res.CutWeight += a.Weight
			}
		}
	}
	total := g.TotalWeight()
	if total > 0 {
		var max uint64
		for _, w := range res.PartWeights {
			if w > max {
				max = w
			}
		}
		res.Imbalance = float64(max) * float64(k) / float64(total)
	}
	return res
}
