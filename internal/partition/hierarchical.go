package partition

import (
	"fmt"
)

// Hierarchical performs the two-level partitioning sketched in the
// paper's conclusion ("Instead of having a binary model in which keys are
// co-located or not, distances between servers can be taken into account
// to leverage rack locality"): the graph is first split across racks —
// minimizing inter-rack traffic, the expensive kind — and each rack's
// induced subgraph is then split across that rack's servers.
//
// rackOf maps every server (part index of the final result) to its rack.
// The final Result assigns vertices to servers; CutWeight counts all
// inter-server edges as usual. Use CutBetweenRacks to weigh the two
// levels separately.
func Hierarchical(g *Graph, rackOf []int, opts Options) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	servers := len(rackOf)
	if servers < 1 {
		return nil, fmt.Errorf("partition: hierarchical needs at least one server")
	}
	racks := 0
	for s, r := range rackOf {
		if r < 0 {
			return nil, fmt.Errorf("partition: server %d has negative rack %d", s, r)
		}
		if r+1 > racks {
			racks = r + 1
		}
	}
	serversInRack := make([][]int, racks)
	for s, r := range rackOf {
		serversInRack[r] = append(serversInRack[r], s)
	}
	for r, list := range serversInRack {
		if len(list) == 0 {
			return nil, fmt.Errorf("partition: rack %d has no servers", r)
		}
	}
	if racks == 1 {
		// Degenerate: plain partitioning over the single rack's servers.
		res, err := Partition(g, withK(opts, servers))
		if err != nil {
			return nil, err
		}
		remapped := make([]int, len(res.Parts))
		for v, p := range res.Parts {
			remapped[v] = serversInRack[0][p]
		}
		return summarize(g, remapped, servers), nil
	}

	// Level 1: partition across racks, each rack weighted by its server
	// count so larger racks receive proportionally more keys.
	fractions := make([]float64, racks)
	for r, list := range serversInRack {
		fractions[r] = float64(len(list)) / float64(servers)
	}
	rackOpts := withK(opts, racks)
	rackOpts.TargetFractions = fractions
	rackRes, err := Partition(g, rackOpts)
	if err != nil {
		return nil, fmt.Errorf("partition racks: %w", err)
	}

	// Level 2: partition each rack's induced subgraph across its servers.
	parts := make([]int, g.NumVertices())
	for r := 0; r < racks; r++ {
		sub, toGlobal := induced(g, rackRes.Parts, r)
		if sub.NumVertices() == 0 {
			continue
		}
		subOpts := withK(opts, len(serversInRack[r]))
		subOpts.Seed = opts.Seed + int64(r) + 1
		subRes, err := Partition(sub, subOpts)
		if err != nil {
			return nil, fmt.Errorf("partition rack %d: %w", r, err)
		}
		for sv, p := range subRes.Parts {
			parts[toGlobal[sv]] = serversInRack[r][p]
		}
	}
	return summarize(g, parts, servers), nil
}

// CutBetweenRacks measures the weight of edges crossing racks for an
// assignment of vertices to servers.
func CutBetweenRacks(g *Graph, parts, rackOf []int) uint64 {
	var cut uint64
	for u, list := range g.Adj {
		for _, a := range list {
			if a.To > u && rackOf[parts[a.To]] != rackOf[parts[u]] {
				cut += a.Weight
			}
		}
	}
	return cut
}

func withK(opts Options, k int) Options {
	opts.K = k
	opts.TargetFractions = nil
	return opts
}

// induced extracts the subgraph of vertices assigned to part p, returning
// it along with the mapping from subgraph indices to original indices.
func induced(g *Graph, parts []int, p int) (*Graph, []int) {
	var toGlobal []int
	toLocal := make(map[int]int)
	for v, pv := range parts {
		if pv == p {
			toLocal[v] = len(toGlobal)
			toGlobal = append(toGlobal, v)
		}
	}
	sub := &Graph{
		Weights: make([]uint64, len(toGlobal)),
		Adj:     make([][]Adj, len(toGlobal)),
	}
	for lv, gv := range toGlobal {
		sub.Weights[lv] = g.Weights[gv]
		for _, a := range g.Adj[gv] {
			if la, ok := toLocal[a.To]; ok {
				sub.Adj[lv] = append(sub.Adj[lv], Adj{To: la, Weight: a.Weight})
			}
		}
	}
	return sub, toGlobal
}
