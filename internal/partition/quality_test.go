package partition

import (
	"math/rand"
	"testing"
)

// bruteForceBestCut exhaustively finds the minimum cut over all balanced
// 2-way assignments of a tiny graph. Balance: both parts must stay under
// alpha * total / 2.
func bruteForceBestCut(g *Graph, alpha float64) uint64 {
	n := g.NumVertices()
	total := g.TotalWeight()
	capacity := uint64(alpha * float64(total) / 2)
	if capacity == 0 {
		capacity = 1
	}
	best := ^uint64(0)
	for mask := 0; mask < 1<<n; mask++ {
		var w0, w1 uint64
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				w1 += g.Weights[v]
			} else {
				w0 += g.Weights[v]
			}
		}
		if w0 > capacity || w1 > capacity {
			continue
		}
		var cut uint64
		for u, list := range g.Adj {
			for _, a := range list {
				if a.To > u && (mask>>u)&1 != (mask>>a.To)&1 {
					cut += a.Weight
				}
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

// TestPartitionNearOptimalOnTinyGraphs compares the multilevel heuristic
// against the exhaustive optimum on random 10-vertex graphs. Heuristics
// cannot guarantee optimality, but on graphs this small the FM refinement
// should land within a small factor of the best balanced cut in the vast
// majority of cases.
func TestPartitionNearOptimalOnTinyGraphs(t *testing.T) {
	const (
		trials    = 60
		n         = 10
		alpha     = 1.3
		tolerance = 2.0 // heuristic cut may be at most 2x optimum
	)
	rng := rand.New(rand.NewSource(99))
	over := 0
	for trial := 0; trial < trials; trial++ {
		g := &Graph{Weights: make([]uint64, n), Adj: make([][]Adj, n)}
		for i := range g.Weights {
			g.Weights[i] = uint64(rng.Intn(3) + 1)
		}
		for e := 0; e < 14; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			w := uint64(rng.Intn(9) + 1)
			g.Adj[u] = append(g.Adj[u], Adj{To: v, Weight: w})
			g.Adj[v] = append(g.Adj[v], Adj{To: u, Weight: w})
		}
		optimal := bruteForceBestCut(g, alpha)
		res, err := Partition(g, Options{K: 2, Alpha: alpha, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if optimal == ^uint64(0) {
			continue // no balanced assignment exists at this alpha
		}
		if float64(res.CutWeight) > tolerance*float64(optimal)+0.5 {
			over++
			t.Logf("trial %d: heuristic %d vs optimal %d", trial, res.CutWeight, optimal)
		}
	}
	// Allow a small number of unlucky instances.
	if over > trials/10 {
		t.Fatalf("%d/%d trials exceeded %.1fx of the optimal cut", over, trials, tolerance)
	}
}

// TestPartitionExactOnSeparableGraphs checks that when the optimum is
// obviously zero (two disconnected balanced halves) the heuristic finds
// it every time.
func TestPartitionExactOnSeparableGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		half := rng.Intn(5) + 3
		g := clustersGraph(2, half, uint64(rng.Intn(50)+1), 0)
		// clustersGraph with external weight 0 adds zero-weight bridge
		// edges; the optimal balanced cut weight is 0.
		res, err := Partition(g, Options{K: 2, Alpha: 1.03, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if res.CutWeight != 0 {
			t.Fatalf("trial %d: cut %d on separable graph", trial, res.CutWeight)
		}
	}
}
