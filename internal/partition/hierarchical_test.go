package partition

import (
	"testing"
)

func TestHierarchicalValidation(t *testing.T) {
	g := pathGraph(8)
	if _, err := Hierarchical(g, nil, Options{}); err == nil {
		t.Error("no servers accepted")
	}
	if _, err := Hierarchical(g, []int{0, -1}, Options{}); err == nil {
		t.Error("negative rack accepted")
	}
	if _, err := Hierarchical(g, []int{0, 2}, Options{}); err == nil {
		t.Error("empty rack accepted")
	}
	if _, err := Hierarchical(nil, []int{0}, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestHierarchicalSingleRackEqualsFlat(t *testing.T) {
	g := clustersGraph(2, 8, 50, 1)
	res, err := Hierarchical(g, []int{0, 0}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 2)
	if res.CutWeight != 1 {
		t.Fatalf("CutWeight = %d, want 1", res.CutWeight)
	}
}

func TestHierarchicalPrefersIntraRackCut(t *testing.T) {
	// Four clusters with a chain of light links; 4 servers in 2 racks.
	// Any 4-way split cuts 3 light edges; the hierarchical split must put
	// at most 1 of those cuts between racks (the flat partitioner gives
	// no such guarantee).
	g := clustersGraph(4, 6, 100, 1)
	rackOf := []int{0, 0, 1, 1}
	res, err := Hierarchical(g, rackOf, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 4)
	if res.CutWeight != 3 {
		t.Fatalf("CutWeight = %d, want 3 (inter-cluster edges)", res.CutWeight)
	}
	interRack := CutBetweenRacks(g, res.Parts, rackOf)
	if interRack > 1 {
		t.Fatalf("inter-rack cut = %d, want <= 1", interRack)
	}
	// Each cluster stays whole on one server.
	for c := 0; c < 4; c++ {
		p := res.Parts[c*6]
		for i := 1; i < 6; i++ {
			if res.Parts[c*6+i] != p {
				t.Fatalf("cluster %d split", c)
			}
		}
	}
}

func TestHierarchicalUnequalRacks(t *testing.T) {
	// 3 servers: rack 0 has two, rack 1 has one. 30 isolated unit
	// vertices must split roughly 2:1 across racks.
	n := 30
	g := &Graph{Weights: make([]uint64, n), Adj: make([][]Adj, n)}
	for i := range g.Weights {
		g.Weights[i] = 1
	}
	rackOf := []int{0, 0, 1}
	res, err := Hierarchical(g, rackOf, Options{Seed: 5, Alpha: 1.03})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 3)
	rackLoad := make([]uint64, 2)
	for _, p := range res.Parts {
		rackLoad[rackOf[p]] += 1
	}
	if rackLoad[0] < 18 || rackLoad[0] > 22 {
		t.Fatalf("rack 0 load = %d, want ~20 of 30", rackLoad[0])
	}
}

func TestTargetFractionsValidation(t *testing.T) {
	g := pathGraph(4)
	if _, err := Partition(g, Options{K: 2, TargetFractions: []float64{1.0}}); err == nil {
		t.Error("wrong-length fractions accepted")
	}
	if _, err := Partition(g, Options{K: 2, TargetFractions: []float64{1.0, 0}}); err == nil {
		t.Error("zero fraction accepted")
	}
}

func TestTargetFractionsHonoured(t *testing.T) {
	n := 40
	g := &Graph{Weights: make([]uint64, n), Adj: make([][]Adj, n)}
	for i := range g.Weights {
		g.Weights[i] = 1
	}
	res, err := Partition(g, Options{
		K: 2, Alpha: 1.03, Seed: 2,
		TargetFractions: []float64{0.75, 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 2)
	if res.PartWeights[0] < 28 || res.PartWeights[0] > 31 {
		t.Fatalf("part 0 weight = %d, want ~30 of 40", res.PartWeights[0])
	}
}

func TestCutBetweenRacks(t *testing.T) {
	g := pathGraph(4)
	parts := []int{0, 1, 2, 3}
	rackOf := []int{0, 0, 1, 1}
	// Edges: 0-1 (same rack), 1-2 (cross), 2-3 (same rack).
	if got := CutBetweenRacks(g, parts, rackOf); got != 1 {
		t.Fatalf("CutBetweenRacks = %d, want 1", got)
	}
}
