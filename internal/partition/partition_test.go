package partition

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// pathGraph builds a path v0-v1-...-v(n-1) with unit weights.
func pathGraph(n int) *Graph {
	g := &Graph{Weights: make([]uint64, n), Adj: make([][]Adj, n)}
	for i := 0; i < n; i++ {
		g.Weights[i] = 1
		if i > 0 {
			g.Adj[i] = append(g.Adj[i], Adj{To: i - 1, Weight: 1})
			g.Adj[i-1] = append(g.Adj[i-1], Adj{To: i, Weight: 1})
		}
	}
	return g
}

// clustersGraph builds k dense clusters of size sz with heavy internal
// edges and light edges between consecutive clusters.
func clustersGraph(k, sz int, internal, external uint64) *Graph {
	n := k * sz
	g := &Graph{Weights: make([]uint64, n), Adj: make([][]Adj, n)}
	for i := 0; i < n; i++ {
		g.Weights[i] = 1
	}
	addEdge := func(u, v int, w uint64) {
		g.Adj[u] = append(g.Adj[u], Adj{To: v, Weight: w})
		g.Adj[v] = append(g.Adj[v], Adj{To: u, Weight: w})
	}
	for c := 0; c < k; c++ {
		base := c * sz
		for i := 0; i < sz; i++ {
			for j := i + 1; j < sz; j++ {
				addEdge(base+i, base+j, internal)
			}
		}
		if c > 0 {
			addEdge(base, base-1, external)
		}
	}
	return g
}

func checkValid(t *testing.T, g *Graph, res *Result, k int) {
	t.Helper()
	if len(res.Parts) != g.NumVertices() {
		t.Fatalf("len(Parts) = %d, want %d", len(res.Parts), g.NumVertices())
	}
	for v, p := range res.Parts {
		if p < 0 || p >= k {
			t.Fatalf("vertex %d assigned to invalid part %d", v, p)
		}
	}
	var sum uint64
	for _, w := range res.PartWeights {
		sum += w
	}
	if sum != g.TotalWeight() {
		t.Fatalf("part weights sum %d != total %d", sum, g.TotalWeight())
	}
}

func TestKOne(t *testing.T) {
	g := pathGraph(10)
	res, err := Partition(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 1)
	if res.CutWeight != 0 {
		t.Fatalf("CutWeight = %d, want 0 for K=1", res.CutWeight)
	}
	if res.Imbalance != 1.0 {
		t.Fatalf("Imbalance = %f, want 1.0", res.Imbalance)
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Partition(&Graph{}, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 0 {
		t.Fatalf("Parts = %v, want empty", res.Parts)
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := Partition(nil, Options{K: 2}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Partition(pathGraph(3), Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	bad := &Graph{Weights: []uint64{1}, Adj: [][]Adj{{{To: 5, Weight: 1}}}}
	if _, err := Partition(bad, Options{K: 2}); err == nil {
		t.Error("out-of-range neighbour accepted")
	}
	loop := &Graph{Weights: []uint64{1}, Adj: [][]Adj{{{To: 0, Weight: 1}}}}
	if _, err := Partition(loop, Options{K: 2}); err == nil {
		t.Error("self-loop accepted")
	}
	mismatch := &Graph{Weights: []uint64{1, 1}, Adj: [][]Adj{nil}}
	if _, err := Partition(mismatch, Options{K: 2}); err == nil {
		t.Error("weights/adj length mismatch accepted")
	}
}

func TestPathBisection(t *testing.T) {
	// A path of 2m unit vertices bisects with cut weight 1.
	g := pathGraph(20)
	res, err := Partition(g, Options{K: 2, Alpha: 1.03, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 2)
	if res.CutWeight != 1 {
		t.Errorf("CutWeight = %d, want 1 (single cut on a path)", res.CutWeight)
	}
	if res.Imbalance > 1.03+1e-9 {
		t.Errorf("Imbalance = %f, want <= 1.03", res.Imbalance)
	}
}

func TestClustersRecovered(t *testing.T) {
	// 4 dense clusters of 8 vertices: the partitioner must cut only the
	// 3 light inter-cluster edges.
	g := clustersGraph(4, 8, 100, 1)
	res, err := Partition(g, Options{K: 4, Alpha: 1.03, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 4)
	if res.CutWeight != 3 {
		t.Errorf("CutWeight = %d, want 3 (inter-cluster edges only)", res.CutWeight)
	}
	// Every cluster must land in a single part.
	for c := 0; c < 4; c++ {
		p := res.Parts[c*8]
		for i := 1; i < 8; i++ {
			if res.Parts[c*8+i] != p {
				t.Errorf("cluster %d split between parts", c)
				break
			}
		}
	}
}

func TestBalanceRespected(t *testing.T) {
	// Random graph: the balance bound must hold (unit weights make it
	// always feasible).
	rng := rand.New(rand.NewSource(3))
	n := 200
	g := &Graph{Weights: make([]uint64, n), Adj: make([][]Adj, n)}
	for i := 0; i < n; i++ {
		g.Weights[i] = 1
	}
	for e := 0; e < 600; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		w := uint64(rng.Intn(10) + 1)
		g.Adj[u] = append(g.Adj[u], Adj{To: v, Weight: w})
		g.Adj[v] = append(g.Adj[v], Adj{To: u, Weight: w})
	}
	for _, k := range []int{2, 3, 4, 6} {
		res, err := Partition(g, Options{K: k, Alpha: 1.03, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		checkValid(t, g, res, k)
		if res.Imbalance > 1.03+0.05 {
			t.Errorf("K=%d: Imbalance = %f, want near <= 1.03", k, res.Imbalance)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := clustersGraph(3, 10, 50, 2)
	a, err := Partition(g, Options{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Options{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			t.Fatalf("vertex %d differs across identical runs", i)
		}
	}
}

func TestRefinementImprovesCut(t *testing.T) {
	// With refinement disabled (1 pass on an adversarial start we can't
	// force directly), we instead check that the multilevel result beats
	// a naive modulo assignment on a clustered graph.
	g := clustersGraph(2, 16, 10, 1)
	res, err := Partition(g, Options{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	naive := make([]int, g.NumVertices())
	for i := range naive {
		naive[i] = i % 2
	}
	naiveCut := cutOf(g, naive)
	if res.CutWeight >= naiveCut {
		t.Errorf("partitioner cut %d not better than naive %d", res.CutWeight, naiveCut)
	}
}

func cutOf(g *Graph, parts []int) uint64 {
	var cut uint64
	for u, list := range g.Adj {
		for _, a := range list {
			if a.To > u && parts[a.To] != parts[u] {
				cut += a.Weight
			}
		}
	}
	return cut
}

func TestHugeVertexPlacedSomewhere(t *testing.T) {
	// One vertex heavier than the cap must still be placed (on the
	// lightest part) rather than rejected.
	g := &Graph{
		Weights: []uint64{1000, 1, 1, 1},
		Adj:     make([][]Adj, 4),
	}
	g.Adj[0] = []Adj{{To: 1, Weight: 5}}
	g.Adj[1] = []Adj{{To: 0, Weight: 5}}
	res, err := Partition(g, Options{K: 2, Alpha: 1.03, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 2)
}

func TestParallelEdgesMerged(t *testing.T) {
	// Duplicate adjacency entries must behave additively.
	g := &Graph{
		Weights: []uint64{1, 1, 1, 1},
		Adj: [][]Adj{
			{{To: 1, Weight: 3}, {To: 1, Weight: 4}},
			{{To: 0, Weight: 3}, {To: 0, Weight: 4}},
			{{To: 3, Weight: 1}},
			{{To: 2, Weight: 1}},
		},
	}
	res, err := Partition(g, Options{K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 0-1 (weight 7) must not be cut; 2-3 (weight 1) must not be cut
	// either since two parts of two vertices each is balanced.
	if res.Parts[0] != res.Parts[1] {
		t.Error("heavy parallel edge 0-1 was cut")
	}
	if res.CutWeight != 0 {
		t.Errorf("CutWeight = %d, want 0", res.CutWeight)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Isolated vertices must be distributed for balance.
	n := 12
	g := &Graph{Weights: make([]uint64, n), Adj: make([][]Adj, n)}
	for i := range g.Weights {
		g.Weights[i] = 1
	}
	res, err := Partition(g, Options{K: 3, Alpha: 1.03, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 3)
	for p, w := range res.PartWeights {
		if w != 4 {
			t.Errorf("part %d weight = %d, want 4", p, w)
		}
	}
}

func TestPropertyValidAssignment(t *testing.T) {
	// Property: any random graph partitions into a valid assignment with
	// conserved weight and K respected.
	f := func(seed int64, nRaw, kRaw, eRaw uint8) bool {
		n := int(nRaw)%50 + 1
		k := int(kRaw)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		g := &Graph{Weights: make([]uint64, n), Adj: make([][]Adj, n)}
		for i := 0; i < n; i++ {
			g.Weights[i] = uint64(rng.Intn(5) + 1)
		}
		for e := 0; e < int(eRaw); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			w := uint64(rng.Intn(20) + 1)
			g.Adj[u] = append(g.Adj[u], Adj{To: v, Weight: w})
			g.Adj[v] = append(g.Adj[v], Adj{To: u, Weight: w})
		}
		res, err := Partition(g, Options{K: k, Alpha: 1.1, Seed: seed})
		if err != nil {
			return false
		}
		if len(res.Parts) != n {
			return false
		}
		var sum uint64
		for _, w := range res.PartWeights {
			sum += w
		}
		if sum != g.TotalWeight() {
			return false
		}
		for _, p := range res.Parts {
			if p < 0 || p >= k {
				return false
			}
		}
		// Cut reported must match a recount.
		return res.CutWeight == cutOf(g, res.Parts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedValidation(t *testing.T) {
	g := pathGraph(4)
	if _, err := Partition(g, Options{K: 2, Pinned: []int{0, -1}}); err == nil {
		t.Error("short Pinned slice accepted")
	}
	if _, err := Partition(g, Options{K: 2, Pinned: []int{0, -1, 2, -1}}); err == nil {
		t.Error("pin to part >= K accepted")
	}
	if _, err := Partition(g, Options{K: 2, Pinned: []int{0, -1, -2, -1}}); err == nil {
		t.Error("pin < -1 accepted")
	}
}

func TestPinnedRespected(t *testing.T) {
	// Two dense clusters; pin one vertex of each cluster to the
	// *opposite* part of what the cut optimum wants. The pins must win.
	g := clustersGraph(2, 6, 10, 1)
	pinned := make([]int, g.NumVertices())
	for i := range pinned {
		pinned[i] = -1
	}
	pinned[0] = 1 // vertex in cluster 0 forced to part 1
	pinned[6] = 0 // vertex in cluster 1 forced to part 0
	pinned[7] = 0 // second pin so part 0 is not drained by rebalance
	res, err := Partition(g, Options{K: 2, Alpha: 1.2, Seed: 1, Pinned: pinned})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 2)
	for v, p := range pinned {
		if p >= 0 && res.Parts[v] != p {
			t.Fatalf("vertex %d assigned to %d, pinned to %d", v, res.Parts[v], p)
		}
	}
}

// TestPinnedRepairScenario models failure recovery: most vertices are
// pinned where they already live (the survivors), a few are free (the
// dead server's keys) and must land with their heaviest neighbours.
func TestPinnedRepairScenario(t *testing.T) {
	// Clusters 0 and 1 are pinned to parts 0 and 1. Two free vertices
	// attach heavily to cluster 0 and cluster 1 respectively.
	g := clustersGraph(2, 5, 10, 1) // vertices 0-4 cluster 0, 5-9 cluster 1
	free0, free1 := 10, 11
	g.Weights = append(g.Weights, 1, 1)
	g.Adj = append(g.Adj, nil, nil)
	addEdge := func(u, v int, w uint64) {
		g.Adj[u] = append(g.Adj[u], Adj{To: v, Weight: w})
		g.Adj[v] = append(g.Adj[v], Adj{To: u, Weight: w})
	}
	addEdge(free0, 2, 50)
	addEdge(free1, 7, 50)
	addEdge(free0, free1, 1)

	pinned := make([]int, g.NumVertices())
	for v := 0; v < 5; v++ {
		pinned[v] = 0
	}
	for v := 5; v < 10; v++ {
		pinned[v] = 1
	}
	pinned[free0], pinned[free1] = -1, -1

	res, err := Partition(g, Options{K: 2, Alpha: 1.5, Seed: 7, Pinned: pinned})
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, g, res, 2)
	for v := 0; v < 10; v++ {
		if res.Parts[v] != pinned[v] {
			t.Fatalf("survivor vertex %d moved from %d to %d", v, pinned[v], res.Parts[v])
		}
	}
	if res.Parts[free0] != 0 {
		t.Errorf("free vertex %d placed on %d, want 0 (heaviest neighbours)", free0, res.Parts[free0])
	}
	if res.Parts[free1] != 1 {
		t.Errorf("free vertex %d placed on %d, want 1 (heaviest neighbours)", free1, res.Parts[free1])
	}
}

func TestPinnedDeterministic(t *testing.T) {
	g := clustersGraph(3, 4, 5, 1)
	pinned := make([]int, g.NumVertices())
	for i := range pinned {
		pinned[i] = -1
	}
	pinned[0], pinned[4], pinned[8] = 0, 1, 2
	a, err := Partition(g, Options{K: 3, Seed: 42, Pinned: pinned})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, Options{K: 3, Seed: 42, Pinned: pinned})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Parts {
		if a.Parts[v] != b.Parts[v] {
			t.Fatalf("non-deterministic at vertex %d: %d vs %d", v, a.Parts[v], b.Parts[v])
		}
	}
}

func BenchmarkPartitionClusters(b *testing.B) {
	for _, size := range []int{100, 1000} {
		g := clustersGraph(4, size/4, 10, 1)
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Partition(g, Options{K: 4, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
