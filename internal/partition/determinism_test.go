package partition

import (
	"math/rand"
	"testing"
)

// buildSkewedGraph builds a reproducible graph with enough vertices to
// exercise coarsening and refinement.
func buildSkewedGraph(n int) *Graph {
	g := &Graph{Weights: make([]uint64, n), Adj: make([][]Adj, n)}
	src := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		g.Weights[i] = uint64(1 + src.Intn(5))
	}
	addEdge := func(u, v int, w uint64) {
		g.Adj[u] = append(g.Adj[u], Adj{To: v, Weight: w})
		g.Adj[v] = append(g.Adj[v], Adj{To: u, Weight: w})
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= 3; d++ {
			j := (i + d*7) % n
			if i != j {
				addEdge(i, j, uint64(1+src.Intn(100)))
			}
		}
	}
	return g
}

// TestPartitionDeterministicSeed asserts that two runs with identical
// inputs and the same Seed produce identical plans. This is the
// regression test for the reproducibility bug: plan generation must not
// draw from process-global randomness.
func TestPartitionDeterministicSeed(t *testing.T) {
	g := buildSkewedGraph(500)
	opts := Options{K: 4, Alpha: DefaultAlpha, Seed: 7}

	first, err := Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := Partition(buildSkewedGraph(500), opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Parts) != len(first.Parts) {
			t.Fatalf("run %d: %d parts vs %d", run, len(again.Parts), len(first.Parts))
		}
		for v := range first.Parts {
			if first.Parts[v] != again.Parts[v] {
				t.Fatalf("run %d: vertex %d assigned to %d, first run said %d",
					run, v, again.Parts[v], first.Parts[v])
			}
		}
		if again.CutWeight != first.CutWeight {
			t.Fatalf("run %d: cut %d vs %d", run, again.CutWeight, first.CutWeight)
		}
	}
}

// TestPartitionExplicitRand asserts that an explicitly threaded
// *rand.Rand (a) overrides Seed and (b) reproduces the same plan when
// the caller restarts the generator from the same state.
func TestPartitionExplicitRand(t *testing.T) {
	g := buildSkewedGraph(300)

	run := func(src *rand.Rand) *Result {
		res, err := Partition(buildSkewedGraph(300), Options{K: 3, Rand: src})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a := run(rand.New(rand.NewSource(99)))
	b := run(rand.New(rand.NewSource(99)))
	for v := range a.Parts {
		if a.Parts[v] != b.Parts[v] {
			t.Fatalf("explicit Rand not reproducible: vertex %d got %d vs %d", v, a.Parts[v], b.Parts[v])
		}
	}

	// A shared generator drives a deterministic sequence of plans: two
	// sequential calls consume disjoint portions of one stream and a
	// replay of that stream reproduces both plans.
	shared := rand.New(rand.NewSource(5))
	s1 := run(shared)
	s2 := run(shared)
	replay := rand.New(rand.NewSource(5))
	r1 := run(replay)
	r2 := run(replay)
	for v := range s1.Parts {
		if s1.Parts[v] != r1.Parts[v] {
			t.Fatalf("sequential plan 1 not replayed at vertex %d", v)
		}
	}
	for v := range s2.Parts {
		if s2.Parts[v] != r2.Parts[v] {
			t.Fatalf("sequential plan 2 not replayed at vertex %d", v)
		}
	}
	_ = g
}

// TestHierarchicalDeterministicSeed covers the rack-aware path, which
// derives per-rack sub-seeds (or consumes the explicit Rand stream
// sequentially).
func TestHierarchicalDeterministicSeed(t *testing.T) {
	rackOf := []int{0, 0, 1, 1}
	a, err := Hierarchical(buildSkewedGraph(400), rackOf, Options{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hierarchical(buildSkewedGraph(400), rackOf, Options{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Parts {
		if a.Parts[v] != b.Parts[v] {
			t.Fatalf("hierarchical plan differs at vertex %d: %d vs %d", v, a.Parts[v], b.Parts[v])
		}
	}
}
