package partition

import (
	"fmt"
)

// Tiered performs the full hierarchy: keys are first split across
// clusters — minimizing traffic over the cross-region link, the kind
// priced ~100× a rack hop — and each cluster's induced subgraph is then
// split across that cluster's racks and servers by Hierarchical. The
// cluster level sees only the key graph; per-tier prices enter through
// the federation layer's cost gate, not the cut objective, so the same
// partition is optimal for any non-decreasing tier costs.
//
// rackOf and clusterOf map every server (part index of the final
// result) to its rack and cluster. With one cluster the call delegates
// to Hierarchical unchanged, and with one rack on top of that to the
// flat Partition — the results are byte-identical, so enabling the
// hierarchy on a flat deployment is a no-op.
func Tiered(g *Graph, rackOf, clusterOf []int, opts Options) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	servers := len(clusterOf)
	if servers < 1 {
		return nil, fmt.Errorf("partition: tiered needs at least one server")
	}
	if len(rackOf) != servers {
		return nil, fmt.Errorf("partition: %d rack entries for %d servers", len(rackOf), servers)
	}
	clusters := 0
	for s, c := range clusterOf {
		if c < 0 {
			return nil, fmt.Errorf("partition: server %d has negative cluster %d", s, c)
		}
		if c+1 > clusters {
			clusters = c + 1
		}
	}
	serversInCluster := make([][]int, clusters)
	for s, c := range clusterOf {
		serversInCluster[c] = append(serversInCluster[c], s)
	}
	for c, list := range serversInCluster {
		if len(list) == 0 {
			return nil, fmt.Errorf("partition: cluster %d has no servers", c)
		}
	}
	if clusters == 1 {
		// Degenerate: the single cluster holds every server, so the rack
		// hierarchy (or flat partition) over the whole set is the answer.
		return Hierarchical(g, rackOf, opts)
	}

	// Level 1: partition across clusters, each weighted by its server
	// count so larger clusters receive proportionally more keys.
	fractions := make([]float64, clusters)
	for c, list := range serversInCluster {
		fractions[c] = float64(len(list)) / float64(servers)
	}
	clusterOpts := withK(opts, clusters)
	clusterOpts.TargetFractions = fractions
	clusterRes, err := Partition(g, clusterOpts)
	if err != nil {
		return nil, fmt.Errorf("partition clusters: %w", err)
	}

	// Level 2: run the rack hierarchy inside each cluster's induced
	// subgraph, over that cluster's servers with compacted rack ids.
	parts := make([]int, g.NumVertices())
	for c := 0; c < clusters; c++ {
		sub, toGlobal := induced(g, clusterRes.Parts, c)
		if sub.NumVertices() == 0 {
			continue
		}
		localRacks := compactRacks(rackOf, serversInCluster[c])
		subOpts := opts
		subOpts.TargetFractions = nil
		subOpts.Seed = opts.Seed + int64(c+1)*1_000_003
		subRes, err := Hierarchical(sub, localRacks, subOpts)
		if err != nil {
			return nil, fmt.Errorf("partition cluster %d: %w", c, err)
		}
		for sv, p := range subRes.Parts {
			parts[toGlobal[sv]] = serversInCluster[c][p]
		}
	}
	return summarize(g, parts, servers), nil
}

// compactRacks renumbers the racks of the given servers into a dense
// 0..n-1 range, preserving first-appearance order.
func compactRacks(rackOf []int, servers []int) []int {
	local := make([]int, len(servers))
	seen := make(map[int]int)
	for i, s := range servers {
		r := rackOf[s]
		id, ok := seen[r]
		if !ok {
			id = len(seen)
			seen[r] = id
		}
		local[i] = id
	}
	return local
}

// CutBetweenClusters measures the weight of edges crossing clusters for
// an assignment of vertices to servers.
func CutBetweenClusters(g *Graph, parts, clusterOf []int) uint64 {
	var cut uint64
	for u, list := range g.Adj {
		for _, a := range list {
			if a.To > u && clusterOf[parts[a.To]] != clusterOf[parts[u]] {
				cut += a.Weight
			}
		}
	}
	return cut
}
