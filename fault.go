package locastream

import (
	"fmt"
	"path/filepath"
	"time"

	"github.com/locastream/locastream/internal/checkpoint"
)

// FaultEvent is one fault-tolerance lifecycle notification.
type FaultEvent = checkpoint.Event

// FaultPhase classifies a FaultEvent.
type FaultPhase = checkpoint.Phase

// Fault-tolerance lifecycle phases.
const (
	CheckpointTaken FaultPhase = checkpoint.PhaseCheckpoint
	ServerSuspected FaultPhase = checkpoint.PhaseSuspect
	ServerFailed    FaultPhase = checkpoint.PhaseFailure
	RecoveryArmed   FaultPhase = checkpoint.PhaseArmed
	RecoveryRouted  FaultPhase = checkpoint.PhaseRerouted
	ServerRecovered FaultPhase = checkpoint.PhaseRecovered
)

// CheckpointStore persists incremental checkpoints of keyed state.
type CheckpointStore = checkpoint.Store

// NewMemoryCheckpointStore returns an in-process checkpoint store.
func NewMemoryCheckpointStore() CheckpointStore { return &checkpoint.MemoryStore{} }

// NewFileCheckpointStore returns a checkpoint store appending JSONL
// records to the given file (reloaded, last-record-wins, on Load).
func NewFileCheckpointStore(path string) (CheckpointStore, error) {
	return checkpoint.NewFileStore(path)
}

// FaultStatus is the fault-tolerance subsystem's public state.
type FaultStatus = checkpoint.Status

// RecoveryReport summarizes one completed failure recovery.
type RecoveryReport = checkpoint.RecoveryReport

// FaultToleranceOptions tune the fault-tolerance subsystem. The zero
// value is usable: checkpoint every 10s, probe every 1s, suspect after
// 2s of silence, confirm (and recover) after 6s, in-memory checkpoints.
type FaultToleranceOptions struct {
	// CheckpointEvery is the incremental checkpoint interval
	// (default 10s).
	CheckpointEvery time.Duration
	// ProbeEvery is the heartbeat cadence of the background loop
	// (default 1s).
	ProbeEvery time.Duration
	// SuspectAfter and ConfirmAfter are the failure-detection
	// thresholds (defaults 2s and 6s).
	SuspectAfter time.Duration
	ConfirmAfter time.Duration
	// Dir, when set, persists checkpoints to a JSONL file under this
	// directory (created if needed).
	Dir string
	// Store overrides Dir with a custom checkpoint store. When neither
	// is set and the App was built with WithStateStore, checkpoints go
	// to that tiered queryable store (versioned, compacted, readable
	// through QueryState and the /state endpoints); otherwise they stay
	// in process memory.
	Store CheckpointStore
	// OnEvent, when set, receives every lifecycle event synchronously
	// (checkpoint taken, server suspected/failed/recovered). Hooks must
	// not call back into the FaultTolerance.
	OnEvent func(FaultEvent)
	// Autopilot, when set, is notified of failures and recoveries: the
	// controller journals them, pauses optimization while a recovery is
	// in progress, and serves this subsystem's status on /checkpoints.
	Autopilot *Autopilot
}

// FaultTolerance is the application's fault-tolerance subsystem:
// periodic asynchronous incremental checkpoints of keyed state,
// heartbeat failure detection, and locality-preserving recovery that
// moves only a dead server's keys and restores them from the latest
// checkpoint. Create with App.NewFaultTolerance (tick-driven) or
// App.StartFaultTolerance (background loop). All methods are safe for
// concurrent use.
type FaultTolerance struct {
	sup   *checkpoint.Supervisor
	owned *checkpoint.FileStore // closed on Stop when we created it
}

// NewFaultTolerance builds the subsystem without starting its loop;
// drive it with Tick (deterministic, manual clock) or call Start later.
func (a *App) NewFaultTolerance(opts FaultToleranceOptions) (*FaultTolerance, error) {
	ft := &FaultTolerance{}
	store := opts.Store
	if store == nil && opts.Dir != "" {
		fs, err := checkpoint.NewFileStore(filepath.Join(opts.Dir, "checkpoints.jsonl"))
		if err != nil {
			return nil, fmt.Errorf("locastream: open checkpoint store: %w", err)
		}
		store = fs
		ft.owned = fs
	}
	if store == nil && a.stateStore != nil {
		// WithStateStore: checkpoints land in the tiered queryable store,
		// versioned and compacted; the App owns its lifetime.
		store = a.stateStore
	}
	onEvent := opts.OnEvent
	if ap := opts.Autopilot; ap != nil {
		user := onEvent
		onEvent = func(e FaultEvent) {
			switch e.Phase {
			case ServerFailed:
				ap.ctl.NoteFailure(e.Server, "heartbeat failure confirmed")
			case ServerRecovered:
				ap.ctl.NoteRecovery(e.Server, e.Version,
					fmt.Sprintf("%d keys reassigned, repair configuration v%d", e.Keys, e.Version))
			}
			if user != nil {
				user(e)
			}
		}
	}
	sup, err := checkpoint.NewSupervisor(a.live, a.mgr, checkpoint.Options{
		CheckpointEvery: opts.CheckpointEvery,
		ProbeEvery:      opts.ProbeEvery,
		Detector: checkpoint.DetectorOptions{
			SuspectAfter: opts.SuspectAfter,
			ConfirmAfter: opts.ConfirmAfter,
		},
		Store:   store,
		Lock:    &a.reconfigMu,
		OnEvent: onEvent,
	})
	if err != nil {
		if ft.owned != nil {
			_ = ft.owned.Close()
		}
		return nil, err
	}
	ft.sup = sup
	if opts.Autopilot != nil {
		opts.Autopilot.ctl.SetFaultInfo(func() interface{} { return sup.Status() })
	}
	// ScaleTo drains keyed state through this subsystem before a
	// scale-down (last one attached wins).
	a.ftMu.Lock()
	a.faultTol = ft
	a.ftMu.Unlock()
	return ft, nil
}

// StartFaultTolerance builds the subsystem and starts its background
// loop. Stop it before stopping the App.
func (a *App) StartFaultTolerance(opts FaultToleranceOptions) (*FaultTolerance, error) {
	ft, err := a.NewFaultTolerance(opts)
	if err != nil {
		return nil, err
	}
	ft.sup.Start()
	return ft, nil
}

// Tick runs one supervision round at the given time: checkpoint when
// due, probe every server, recover confirmed failures. Deterministic
// drivers (tests, simulations) advance now manually.
func (ft *FaultTolerance) Tick(now time.Time) error { return ft.sup.Tick(now) }

// Checkpoint takes an incremental checkpoint immediately and returns
// the number of records written.
func (ft *FaultTolerance) Checkpoint(now time.Time) (int, error) { return ft.sup.Checkpoint(now) }

// Status returns the subsystem's public state (also served on the
// autopilot's /checkpoints endpoint when attached).
func (ft *FaultTolerance) Status() FaultStatus { return ft.sup.Status() }

// Recoveries returns the completed failure recoveries, oldest first.
func (ft *FaultTolerance) Recoveries() []RecoveryReport { return ft.sup.Recoveries() }

// Start launches the background loop (no-op when already running).
func (ft *FaultTolerance) Start() { ft.sup.Start() }

// Stop halts the background loop and closes the checkpoint file when
// the subsystem opened one (checkpoints taken after that fail to
// persist — create the subsystem with an explicit Store to manage the
// store's lifetime yourself). Idempotent.
func (ft *FaultTolerance) Stop() error {
	ft.sup.Stop()
	if ft.owned != nil {
		err := ft.owned.Close()
		ft.owned = nil
		return err
	}
	return nil
}

// KillServer simulates the crash of one server: every operator instance
// placed there stops immediately, in-flight tuples queued on it are
// counted lost, and heartbeat probes start failing so an attached
// FaultTolerance detects and recovers the failure. Idempotent; the
// stream keeps flowing on the survivors.
func (a *App) KillServer(server int) error { return a.live.KillServer(server) }

// ServerAlive reports whether the server has not been killed.
func (a *App) ServerAlive(server int) bool { return a.live.ServerAlive(server) }

// TuplesLost returns the cumulative count of tuples lost to server
// failures (queued on a killed server, routed to one before recovery,
// or dropped by a bounded recovery buffer).
func (a *App) TuplesLost() uint64 { return a.live.TuplesLost() }
