package locastream

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestChurnDrill is the acceptance drill for elastic autoscaling: one
// application rides a full load cycle — sustained heavy traffic widens
// the cluster 4 -> 8, sustained light traffic shrinks it 8 -> 3 — with
// the autopilot alone deciding both moves from the measured window
// traffic. Deterministic (manual ticks, seeded optimizer, no sleeps).
// The drill must lose nothing, keep every per-key count exact, respect
// the planner's movement bound, journal both scale decisions durably,
// and end with window locality within 5 points of an application
// partitioned from scratch at the final width.
func TestChurnDrill(t *testing.T) {
	const (
		parallelism = 8
		keys        = 16
		heavy       = 1600 // tuples per heavy window: demands the max width
		light       = 200  // tuples per light window: demands the min width
	)
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")

	app, err := NewApp(scaleTopo(t, parallelism),
		WithAutoscale(3, 8), WithServers(4),
		WithOptimizer(0, 0, 7),
		WithMaxInFlight(4096),
		WithMaxBuffered(4096), // bounded buffering: overflow would surface as loss
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	if app.Servers() != 8 || app.ActiveServers() != 4 {
		t.Fatalf("capacity %d active %d, want 8 and 4", app.Servers(), app.ActiveServers())
	}
	// ScaleTargetLoad 205 sizes one server for ~205 fields transfers per
	// window: the heavy window demands the max width and the light window
	// the min, whether or not the source hop is billed.
	ap, err := app.NewAutopilot(AutopilotOptions{
		CostPerKey:      1,
		JournalPath:     journalPath,
		ScaleTargetLoad: 205,
		ScaleConfirm:    2,
		ScaleCooldown:   1,
		ScaleMaxMoves:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Stop()
	// Scale-downs drain keyed state through this subsystem's checkpoint.
	ft, err := app.NewFaultTolerance(FaultToleranceOptions{Store: NewMemoryCheckpointStore()})
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Stop()

	want := make(map[string]uint64)
	window := func(tuples int) {
		for i := 0; i < tuples; i++ {
			k := "k" + strconv.Itoa(i%keys)
			want[k]++
			if err := app.Inject(Tuple{Values: []string{k, k}}); err != nil {
				t.Fatal(err)
			}
		}
		app.Drain()
	}

	// Heavy phase: window 1 starts the confirmation streak, window 2
	// fires the scale-up.
	window(heavy)
	ap.Tick()
	if app.ActiveServers() != 4 {
		t.Fatalf("scaled after one heavy window: active %d", app.ActiveServers())
	}
	window(heavy)
	ap.Tick()
	if app.ActiveServers() != 8 {
		t.Fatalf("active %d after sustained heavy traffic, want 8", app.ActiveServers())
	}
	upResult := *ap.Status().Scale.LastResult
	if upResult.From != 4 || upResult.To != 8 {
		t.Fatalf("scale-up result = %+v", upResult)
	}
	if upResult.MovedKeys > upResult.MoveBound {
		t.Fatalf("scale-up moved %d keys, bound %d", upResult.MovedKeys, upResult.MoveBound)
	}
	// Two more heavy windows: cooldown passes, the optimizer spreads the
	// keys over the widened cluster, width holds steady at 8.
	for i := 0; i < 2; i++ {
		window(heavy)
		ap.Tick()
	}
	if app.ActiveServers() != 8 {
		t.Fatalf("width did not hold at 8: active %d", app.ActiveServers())
	}

	// Light phase: two light windows confirm the shrink, the third fires
	// nothing more (cooldown, then steady state).
	window(light)
	ap.Tick()
	window(light)
	ap.Tick()
	if app.ActiveServers() != 3 {
		t.Fatalf("active %d after sustained light traffic, want 3", app.ActiveServers())
	}
	downResult := *ap.Status().Scale.LastResult
	if downResult.From != 8 || downResult.To != 3 {
		t.Fatalf("scale-down result = %+v", downResult)
	}
	if downResult.MovedKeys > downResult.MoveBound {
		t.Fatalf("scale-down moved %d keys, bound %d", downResult.MovedKeys, downResult.MoveBound)
	}
	if ft.Status().Fault.Checkpoints == 0 {
		t.Fatal("scale-down skipped the drain checkpoint")
	}
	// Cooldown window, then one steady window letting the optimizer
	// settle on the narrowed cluster.
	window(light)
	ap.Tick()
	window(light)
	ap.Tick()
	if app.ActiveServers() != 3 {
		t.Fatalf("width did not hold at 3: active %d", app.ActiveServers())
	}

	// Measured window at the final width.
	tb := app.FieldsTraffic()
	window(light)
	ta := app.FieldsTraffic()
	drillLocality := float64(ta.LocalTuples-tb.LocalTuples) / float64(ta.Total()-tb.Total())

	// Zero loss and exact per-key counts through both migrations.
	if lost := app.TuplesLost(); lost != 0 {
		t.Fatalf("lost %d tuples across the churn", lost)
	}
	for _, op := range []string{"A", "B"} {
		for k, n := range want {
			total, _ := countKey(t, app, op, parallelism, k)
			if total != n {
				t.Fatalf("%s[%s] counted %d, injected %d", op, k, total, n)
			}
		}
	}

	// The journal is durable: close the sink and re-read the JSONL file —
	// both scale decisions must be recoverable with their signals.
	if err := ap.Stop(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var scaled []Decision
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("corrupt journal line: %v", err)
		}
		if d.Action == Scaled {
			scaled = append(scaled, d)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(scaled) != 2 {
		t.Fatalf("journal holds %d scaled decisions, want 2", len(scaled))
	}
	for i, d := range scaled {
		if d.Signals.WindowTraffic == 0 || d.Reason == "" || d.KeysToMigrate > downResult.MoveBound+upResult.MoveBound {
			t.Fatalf("scaled decision %d lacks signals: %+v", i, d)
		}
	}

	// A from-scratch partition at the final width is the quality bar:
	// the churned application's window locality must be within 5 points.
	fresh, err := NewApp(scaleTopo(t, parallelism),
		WithServers(3), WithOptimizer(0, 0, 7), WithMaxInFlight(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Stop()
	for i := 0; i < 2; i++ {
		for j := 0; j < light; j++ {
			k := "k" + strconv.Itoa(j%keys)
			if err := fresh.Inject(Tuple{Values: []string{k, k}}); err != nil {
				t.Fatal(err)
			}
		}
		fresh.Drain()
		if _, err := fresh.Reconfigure(); err != nil {
			t.Fatal(err)
		}
	}
	fb := fresh.FieldsTraffic()
	for j := 0; j < light; j++ {
		k := "k" + strconv.Itoa(j%keys)
		if err := fresh.Inject(Tuple{Values: []string{k, k}}); err != nil {
			t.Fatal(err)
		}
	}
	fresh.Drain()
	fa := fresh.FieldsTraffic()
	freshLocality := float64(fa.LocalTuples-fb.LocalTuples) / float64(fa.Total()-fb.Total())

	t.Logf("window locality: churned=%.3f fresh=%.3f; scale-up moved %d/%d, scale-down moved %d/%d",
		drillLocality, freshLocality,
		upResult.MovedKeys, upResult.MoveBound, downResult.MovedKeys, downResult.MoveBound)
	if drillLocality < freshLocality-0.05 {
		t.Fatalf("churned locality %.3f fell more than 5 points below from-scratch %.3f",
			drillLocality, freshLocality)
	}
}
