// Failover: the fault-tolerance subsystem on the paper's running
// example. Geo-tagged messages flow through region and hashtag counters
// under a locality-optimized configuration; the subsystem checkpoints
// the keyed state incrementally, one server is killed mid-stream, the
// heartbeat detector escalates it suspect → confirmed, and the recovery
// reassigns only the dead server's keys — survivors never move, pair
// locality is preserved — restoring their counts from the last
// checkpoint. Changes after that checkpoint are the bounded loss.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"time"

	locastream "github.com/locastream/locastream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		parallelism = 4
		regions     = 12
		deadServer  = 3
	)

	topo, err := locastream.NewTopology("geo-trends").
		AddOperator(locastream.Operator{
			Name: "regions", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "hashtags", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("regions", "hashtags", locastream.Fields, 1).
		Build()
	if err != nil {
		return err
	}

	app, err := locastream.NewApp(topo, locastream.WithServers(parallelism))
	if err != nil {
		return err
	}
	defer app.Stop()
	ap, err := app.NewAutopilot(locastream.AutopilotOptions{CostPerKey: 1})
	if err != nil {
		return err
	}
	defer ap.Stop()

	// Manual ticks keep the demo deterministic; pass ProbeEvery and call
	// StartFaultTolerance to run the same loop on a timer.
	ft, err := app.NewFaultTolerance(locastream.FaultToleranceOptions{
		SuspectAfter: 1 * time.Second,
		ConfirmAfter: 3 * time.Second,
		Autopilot:    ap,
		OnEvent: func(e locastream.FaultEvent) {
			switch e.Phase {
			case locastream.CheckpointTaken:
				fmt.Printf("  checkpoint: %d keys, %d bytes\n", e.Keys, e.Bytes)
			case locastream.ServerSuspected:
				fmt.Printf("  server %d suspected\n", e.Server)
			case locastream.ServerFailed:
				fmt.Printf("  server %d failure confirmed, recovering\n", e.Server)
			case locastream.ServerRecovered:
				fmt.Printf("  server %d recovered: %d keys reassigned (config v%d)\n",
					e.Server, e.Keys, e.Version)
			}
		},
	})
	if err != nil {
		return err
	}
	defer ft.Stop()

	inject := func(n int, rng *rand.Rand) error {
		for i := 0; i < n; i++ {
			r := rng.Intn(regions)
			err := app.Inject(locastream.Tuple{Values: []string{
				"region" + strconv.Itoa(r), "#tag" + strconv.Itoa(r),
			}})
			// While a server is down and not yet recovered, tuples routed
			// to it are rejected; the demo just drops them (bounded loss).
			_ = err
		}
		app.Drain()
		return nil
	}

	rng := rand.New(rand.NewSource(7))
	now := time.Unix(0, 0)

	fmt.Println("phase 1: converge and checkpoint")
	if err := inject(6000, rng); err != nil {
		return err
	}
	d := ap.Tick()
	fmt.Printf("  %s: %s\n", d.Action, d.Reason)
	if err := inject(6000, rng); err != nil {
		return err
	}
	fmt.Printf("  locality before failure: %.2f\n", app.Locality())
	if err := ft.Tick(now); err != nil {
		return err
	}

	fmt.Printf("phase 2: kill server %d\n", deadServer)
	if err := app.KillServer(deadServer); err != nil {
		return err
	}
	for i := 1; i <= 3; i++ {
		if err := ft.Tick(now.Add(time.Duration(i) * time.Second)); err != nil {
			return err
		}
	}
	app.Drain()

	fmt.Println("phase 3: the stream keeps flowing on the survivors")
	before := app.FieldsTraffic()
	if err := inject(6000, rng); err != nil {
		return err
	}
	after := app.FieldsTraffic()
	local := after.LocalTuples - before.LocalTuples
	total := after.Total() - before.Total()
	fmt.Printf("  post-recovery window locality: %.2f\n", float64(local)/float64(total))

	for _, rep := range ft.Recoveries() {
		fmt.Printf("\nrecovery report: server %d, %d keys moved, %d restored from checkpoint,\n"+
			"  detected in %v, recovered in %v, %d tuples lost in total\n",
			rep.Server, rep.MovedKeys, rep.RestoredKeys,
			rep.DetectionLatency, rep.Duration.Round(time.Microsecond), rep.TuplesLost)
	}
	return nil
}
