// Quickstart: per-language trending words. Messages (language, text) are
// routed by language to a per-language statistics operator, split into
// (language, word) pairs, and routed by word to a word counter — two
// consecutive fields groupings, the pattern the paper optimizes: every
// language has its own vocabulary, so co-locating a language with its
// words makes the second hop local.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	locastream "github.com/locastream/locastream"
)

// corpus maps each language to its (tiny) vocabulary.
var corpus = map[string][]string{
	"en": {"stream", "routing", "locality", "state", "key"},
	"fr": {"flux", "routage", "localite", "etat", "cle"},
	"de": {"strom", "routing", "lokalitaet", "zustand", "schluessel"},
	"it": {"flusso", "routing", "localita", "stato", "chiave"},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const parallelism = 4

	topo, err := locastream.NewTopology("trending-words").
		AddOperator(locastream.Operator{
			Name: "languages", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "split", Parallelism: parallelism,
			New: func() locastream.Processor {
				return locastream.FlatMapFunc(func(t locastream.Tuple) []locastream.Tuple {
					var out []locastream.Tuple
					for _, w := range strings.Fields(t.Field(1)) {
						out = append(out, locastream.Tuple{Values: []string{t.Field(0), w}})
					}
					return out
				})
			},
		}).
		AddOperator(locastream.Operator{
			Name: "words", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("languages", "split", locastream.LocalOrShuffle, 0).
		Connect("split", "words", locastream.Fields, 1).
		Build()
	if err != nil {
		return err
	}

	app, err := locastream.NewApp(topo,
		locastream.WithServers(parallelism),
		// Route by the language field on the source hop.
		locastream.WithSourceGrouping(locastream.Fields, 0),
	)
	if err != nil {
		return err
	}
	defer app.Stop()

	langs := make([]string, 0, len(corpus))
	for lang := range corpus {
		langs = append(langs, lang)
	}
	rng := rand.New(rand.NewSource(1))
	inject := func(n int) error {
		for i := 0; i < n; i++ {
			lang := langs[rng.Intn(len(langs))]
			vocab := corpus[lang]
			text := vocab[rng.Intn(len(vocab))] + " " + vocab[rng.Intn(len(vocab))]
			if err := app.Inject(locastream.Tuple{Values: []string{lang, text}}); err != nil {
				return err
			}
		}
		app.Drain()
		return nil
	}

	if err := inject(5000); err != nil {
		return err
	}
	fmt.Printf("locality before optimization: %.3f\n", app.Locality())

	// One round of the paper's protocol: collect key-pair statistics,
	// partition the key graph, deploy routing tables, migrate state.
	plan, err := app.Reconfigure()
	if err != nil {
		return err
	}
	fmt.Printf("reconfiguration v%d: %d keys, %d pairs, expected locality %.3f, imbalance %.3f\n",
		plan.Version, plan.Keys, plan.Edges, plan.ExpectedLocality, plan.Imbalance)

	before := app.FieldsTraffic()
	if err := inject(5000); err != nil {
		return err
	}
	after := app.FieldsTraffic()
	after.LocalTuples -= before.LocalTuples
	after.RemoteTuples -= before.RemoteTuples
	fmt.Printf("locality after optimization:  %.3f\n", after.Locality())

	// Counts survive the state migration exactly.
	for _, word := range []string{"routing", "flux", "strom"} {
		var total uint64
		for inst := 0; inst < parallelism; inst++ {
			if err := app.ProcessorState("words", inst, func(p locastream.Processor) {
				total += p.(interface{ Count(string) uint64 }).Count(word)
			}); err != nil {
				return err
			}
		}
		fmt.Printf("count[%q] = %d\n", word, total)
	}
	return nil
}
