// Rackaware: the hierarchical-locality extension from the paper's
// conclusion ("distances between servers can be taken into account to
// leverage rack locality"). Six simulated servers sit in two racks with
// an oversubscribed inter-rack link; the program compares flat
// partitioning against rack-aware two-level partitioning on the drifting
// Twitter workload.
//
//	go run ./examples/rackaware
package main

import (
	"fmt"
	"log"

	locastream "github.com/locastream/locastream"
	"github.com/locastream/locastream/internal/workload"
)

const (
	parallelism = 6
	weekTuples  = 40000
	padding     = 8192
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildSim(rackAware bool) (*locastream.Simulation, error) {
	topo, err := locastream.NewTopology("rack-demo").
		AddOperator(locastream.Operator{
			Name: "regions", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "hashtags", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("regions", "hashtags", locastream.Fields, 1).
		Build()
	if err != nil {
		return nil, err
	}

	model := locastream.Model10G()
	model.InterRackFactor = 4 // the inter-rack link is 4x slower per byte

	opts := []locastream.Option{
		locastream.WithServers(parallelism),
		locastream.WithRacks([]int{0, 0, 0, 1, 1, 1}),
		locastream.WithCostModel(model),
		locastream.WithOptimizer(1.03, 1<<20, 1),
	}
	if rackAware {
		opts = append(opts, locastream.WithRackAwareOptimizer())
	}
	return locastream.NewSimulation(topo, opts...)
}

func run() error {
	fmt.Printf("%-12s %14s %10s %14s\n", "partitioner", "Ktuples/s", "locality", "rack-locality")
	for _, rackAware := range []bool{false, true} {
		sim, err := buildSim(rackAware)
		if err != nil {
			return err
		}

		// Week 1 collects statistics under hash fallback, then the
		// optimizer runs and week 2 measures.
		gen := workload.NewTwitter(workload.DefaultTwitterConfig())
		for i := 0; i < weekTuples; i++ {
			sim.Inject(gen.Next())
		}
		if _, err := sim.Reoptimize(); err != nil {
			return err
		}
		sim.NextWindow()
		gen.NextWeek()
		for i := 0; i < weekTuples; i++ {
			t := gen.Next()
			t.Padding = padding
			sim.Inject(t)
		}

		name := "flat"
		if rackAware {
			name = "rack-aware"
		}
		fmt.Printf("%-12s %14.1f %10.3f %14.3f\n",
			name, sim.ThroughputPerSec()/1000, sim.Locality(), sim.RackLocality())
	}
	return nil
}
