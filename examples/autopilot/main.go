// Autopilot: the closed-loop control plane on the paper's running
// example. Geo-tagged messages flow through region and hashtag counters,
// and nobody ever calls Reconfigure — the autopilot measures each
// statistics window, consults the impact estimator, and deploys new
// routing tables only when the saved traffic amortizes the migration.
// Halfway through, the region↔hashtag correlation shifts; with a
// confirmation window of 2 the controller ignores a one-window blip but
// follows a persistent change.
//
//	go run ./examples/autopilot
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"

	locastream "github.com/locastream/locastream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		parallelism = 4
		regions     = 12
		perWindow   = 6000
		windows     = 8
	)

	topo, err := locastream.NewTopology("geo-trends").
		AddOperator(locastream.Operator{
			Name: "regions", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "hashtags", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("regions", "hashtags", locastream.Fields, 1).
		Build()
	if err != nil {
		return err
	}

	app, err := locastream.NewApp(topo, locastream.WithServers(parallelism))
	if err != nil {
		return err
	}
	defer app.Stop()

	// Manual ticks keep the demo deterministic; pass a Period and call
	// StartAutopilot to run the same loop on a timer.
	ap, err := app.NewAutopilot(locastream.AutopilotOptions{
		CostPerKey: 1,
		Confirm:    2,
		Cooldown:   1,
	})
	if err != nil {
		return err
	}
	defer ap.Stop()

	rng := rand.New(rand.NewSource(7))
	for w := 1; w <= windows; w++ {
		// Each region tweets mostly its own hashtag; after window 4 the
		// trending topics rotate to new regions.
		shift := 0
		if w > windows/2 {
			shift = regions / 2
		}
		for i := 0; i < perWindow; i++ {
			r := rng.Intn(regions)
			tag := (r + shift) % regions
			if rng.Intn(10) == 0 { // 10% noise
				tag = rng.Intn(regions)
			}
			err := app.Inject(locastream.Tuple{Values: []string{
				"region" + strconv.Itoa(r), "#tag" + strconv.Itoa(tag),
			}})
			if err != nil {
				return err
			}
		}
		app.Drain()

		d := ap.Tick()
		fmt.Printf("window %d: locality %.2f  %-9s %s\n",
			w, d.Signals.WindowLocality, d.Action, d.Reason)
	}

	st := ap.Status()
	fmt.Printf("\n%d windows, %d deployments, smoothed locality %.2f\n",
		st.Ticks, st.Deploys, st.SmoothedLocality)
	for _, d := range ap.Decisions(0) {
		if d.Action == locastream.Deployed {
			fmt.Printf("  deployed v%d at window %d: %d keys migrated\n",
				d.Version, d.Seq, d.KeysToMigrate)
		}
	}
	return nil
}
