// Elastic: autoscaling on the paper's running example. Geo-tagged
// messages flow through region and hashtag counters while the stream's
// volume rides a surge-and-ebb cycle. The autopilot's scaler watches the
// measured window traffic: sustained heavy windows widen the cluster
// toward WithAutoscale's max, sustained light windows shrink it toward
// the min. Every resize runs the minimal-movement repartition — state
// on surviving servers stays put, only keys on leaving servers (plus a
// bounded set of volunteers toward joiners) migrate — and scale-downs
// drain keyed state through a checkpoint before the servers leave.
// Counts stay exact across the whole churn.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"

	locastream "github.com/locastream/locastream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		minServers = 2
		maxServers = 6
		regions    = 18
		heavy      = 12000 // tuples per surge window
		light      = 1200  // tuples per ebb window
	)

	// Parallelism = max width: instances beyond the active width exist
	// but are parked until a scale-up recruits their servers.
	topo, err := locastream.NewTopology("geo-trends").
		AddOperator(locastream.Operator{
			Name: "regions", Parallelism: maxServers, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "hashtags", Parallelism: maxServers, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("regions", "hashtags", locastream.Fields, 1).
		Build()
	if err != nil {
		return err
	}

	app, err := locastream.NewApp(topo,
		locastream.WithAutoscale(minServers, maxServers),
		locastream.WithServers(3),
		locastream.WithMaxInFlight(8192),
	)
	if err != nil {
		return err
	}
	defer app.Stop()

	// ScaleTargetLoad sizes one server for ~2500 fields transfers per
	// window; two agreeing windows confirm a resize, one cooldown window
	// follows each.
	ap, err := app.NewAutopilot(locastream.AutopilotOptions{
		CostPerKey:      1,
		ScaleTargetLoad: 2500,
		ScaleConfirm:    2,
		ScaleCooldown:   1,
	})
	if err != nil {
		return err
	}
	defer ap.Stop()

	// Scale-downs drain keyed state through this subsystem's checkpoint
	// before the leaving servers are decommissioned.
	ft, err := app.NewFaultTolerance(locastream.FaultToleranceOptions{
		Store: locastream.NewMemoryCheckpointStore(),
	})
	if err != nil {
		return err
	}
	defer ft.Stop()

	rng := rand.New(rand.NewSource(7))
	injected := uint64(0)
	window := func(tuples int) {
		for i := 0; i < tuples; i++ {
			r := rng.Intn(regions)
			if err := app.Inject(locastream.Tuple{Values: []string{
				"region" + strconv.Itoa(r), "#tag" + strconv.Itoa(r),
			}}); err != nil {
				log.Fatal(err)
			}
			injected++
		}
		app.Drain()
	}

	// Windows 1-4: the surge. 5-10: the ebb. Each window ends with one
	// autopilot tick — the same loop that deploys routing tables also
	// drives the scaler.
	phases := []int{heavy, heavy, heavy, heavy, light, light, light, light, light, light}
	for w, tuples := range phases {
		before := app.ActiveServers()
		window(tuples)
		ap.Tick()
		width := app.ActiveServers()
		note := ""
		if width != before {
			last := ap.Status().Scale.LastResult
			note = fmt.Sprintf("  -> scaled %d to %d servers, moved %d keys (bound %d)",
				last.From, last.To, last.MovedKeys, last.MoveBound)
		}
		fmt.Printf("window %2d: %5d tuples, width %d%s\n", w+1, tuples, width, note)
	}

	st := ap.Status().Scale
	fmt.Printf("\n%d scale operations, final width %d of %d\n",
		st.Scales, st.Active, st.Capacity)

	// The churn moved state twice; nothing was lost and every counter is
	// exact — sum the per-instance counts and compare with what went in.
	var counted uint64
	for i := 0; i < maxServers; i++ {
		var n uint64
		err := app.ProcessorState("regions", i, func(p locastream.Processor) {
			n = p.(interface{ TotalCount() uint64 }).TotalCount()
		})
		if err != nil {
			return err
		}
		counted += n
	}
	fmt.Printf("injected %d, counted %d, tuples lost %d\n",
		injected, counted, app.TuplesLost())
	return nil
}
