// Federation: hierarchical locality across clusters. Six simulated
// servers sit in two clusters of two racks each, with an inter-cluster
// link far more expensive than an inter-rack hop; the program compares
// flat partitioning against the two-level cluster partition
// (WithClusters) on a cross-region workload whose users migrate between
// regions over epochs.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"

	locastream "github.com/locastream/locastream"
	"github.com/locastream/locastream/internal/workload"
)

const (
	parallelism = 6
	epochTuples = 40000
	padding     = 8192
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildSim(clustered bool) (*locastream.Simulation, error) {
	topo, err := locastream.NewTopology("federation-demo").
		AddOperator(locastream.Operator{
			Name: "users", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "topics", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("users", "topics", locastream.Fields, 1).
		Build()
	if err != nil {
		return nil, err
	}

	model := locastream.Model10G()
	model.InterRackFactor = 4
	model.InterClusterFactor = 20 // the inter-cluster link is 20x slower per byte

	opts := []locastream.Option{
		locastream.WithServers(parallelism),
		locastream.WithCostModel(model),
		locastream.WithOptimizer(1.03, 1<<20, 1),
		// Three servers per cluster, split into a two-server and a
		// one-server rack; racks nest inside clusters. Both variants run
		// on this topology — only the partitioner differs.
		locastream.WithRacks([]int{0, 0, 1, 2, 2, 3}),
		locastream.WithClusters([]int{0, 0, 0, 1, 1, 1}),
	}
	if !clustered {
		opts = append(opts, locastream.WithClusterBlindOptimizer())
	}
	return locastream.NewSimulation(topo, opts...)
}

func run() error {
	fmt.Printf("%-12s %14s %10s %18s\n", "partitioner", "Ktuples/s", "locality", "cluster-locality")
	for _, clustered := range []bool{false, true} {
		sim, err := buildSim(clustered)
		if err != nil {
			return err
		}

		// Epoch 1 collects statistics under hash fallback, then the
		// optimizer runs and epoch 2 measures after a migration wave.
		gen := workload.NewCrossRegion(workload.DefaultCrossRegionConfig())
		for i := 0; i < epochTuples; i++ {
			sim.Inject(gen.Next())
		}
		if _, err := sim.Reoptimize(); err != nil {
			return err
		}
		sim.NextWindow()
		gen.NextEpoch()
		for i := 0; i < epochTuples; i++ {
			t := gen.Next()
			t.Padding = padding
			sim.Inject(t)
		}

		name := "flat"
		if clustered {
			name = "two-level"
		}
		fmt.Printf("%-12s %14.1f %10.3f %18.3f\n",
			name, sim.ThroughputPerSec()/1000, sim.Locality(), sim.ClusterLocality())
	}
	return nil
}
