// Geotrends: the paper's running example (§3.2) — geolocated messages
// with hashtags are routed first by region, then by hashtag, to maintain
// per-region and per-hashtag statistics. The workload's correlations
// drift week over week; the app reconfigures online after every week and
// the program prints the per-week locality for the online strategy
// against a hash-routing baseline, a live-engine miniature of Fig. 11a.
//
//	go run ./examples/geotrends
package main

import (
	"fmt"
	"log"

	locastream "github.com/locastream/locastream"
	"github.com/locastream/locastream/internal/workload"
)

const (
	parallelism    = 4
	weeks          = 6
	tuplesPerWeek  = 20000
	reportTemplate = "week %d: online locality %.3f | hash locality %.3f\n"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildApp(hashOnly bool) (*locastream.App, error) {
	topo, err := locastream.NewTopology("geo-trends").
		AddOperator(locastream.Operator{
			Name: "regions", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "hashtags", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("regions", "hashtags", locastream.Fields, 1).
		Build()
	if err != nil {
		return nil, err
	}
	opts := []locastream.Option{
		locastream.WithServers(parallelism),
		locastream.WithOptimizer(1.03, 1<<20, 1),
	}
	if hashOnly {
		opts = append(opts, locastream.WithHashRouting())
	}
	return locastream.NewApp(topo, opts...)
}

func run() error {
	online, err := buildApp(false)
	if err != nil {
		return err
	}
	defer online.Stop()
	hash, err := buildApp(true)
	if err != nil {
		return err
	}
	defer hash.Stop()

	cfg := workload.DefaultTwitterConfig()
	cfg.Locations = 64
	cfg.Hashtags = 1500
	genOnline := workload.NewTwitter(cfg)
	genHash := workload.NewTwitter(cfg) // identical deterministic stream

	prevOnline := locastream.Traffic{}
	prevHash := locastream.Traffic{}
	for week := 0; week < weeks; week++ {
		for i := 0; i < tuplesPerWeek; i++ {
			if err := online.Inject(genOnline.Next()); err != nil {
				return err
			}
			if err := hash.Inject(genHash.Next()); err != nil {
				return err
			}
		}
		online.Drain()
		hash.Drain()

		curOnline := online.FieldsTraffic()
		curHash := hash.FieldsTraffic()
		weekOnline := diff(curOnline, prevOnline)
		weekHash := diff(curHash, prevHash)
		prevOnline, prevHash = curOnline, curHash
		fmt.Printf(reportTemplate, week, weekOnline.Locality(), weekHash.Locality())

		// End of week: the online app optimizes (collect statistics,
		// partition the key graph, deploy tables, migrate state).
		if plan, err := online.Reconfigure(); err != nil {
			return err
		} else if week == 0 {
			fmt.Printf("  first reconfiguration: %d keys, %d pairs, expected locality %.3f\n",
				plan.Keys, plan.Edges, plan.ExpectedLocality)
		}
		genOnline.NextWeek()
		genHash.NextWeek()
	}

	fmt.Printf("\nregion load imbalance: online %.3f | hash %.3f\n",
		locastream.Imbalance(online.Loads("regions")),
		locastream.Imbalance(hash.Loads("regions")))
	return nil
}

func diff(cur, prev locastream.Traffic) locastream.Traffic {
	return locastream.Traffic{
		LocalTuples:  cur.LocalTuples - prev.LocalTuples,
		RemoteTuples: cur.RemoteTuples - prev.RemoteTuples,
		LocalBytes:   cur.LocalBytes - prev.LocalBytes,
		RemoteBytes:  cur.RemoteBytes - prev.RemoteBytes,
	}
}
