// Flickrtags: the §4.4 protocol-validation experiment in miniature —
// photo metadata (tag, country) streams through two stateful counters on
// six simulated servers. The run lasts 30 simulated minutes; the
// configuration reoptimizes after minutes 10 and 20, and the program
// prints the per-minute throughput with and without reconfiguration
// (Fig. 13's shape: a step up right after the first reconfiguration).
//
//	go run ./examples/flickrtags
package main

import (
	"fmt"
	"log"

	locastream "github.com/locastream/locastream"
	"github.com/locastream/locastream/internal/workload"
)

const (
	parallelism     = 6
	minutes         = 30
	tuplesPerMinute = 10000
	padding         = 8192
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildSim(hashOnly bool) (*locastream.Simulation, error) {
	topo, err := locastream.NewTopology("flickr-tags").
		AddOperator(locastream.Operator{
			Name: "tags", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "countries", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("tags", "countries", locastream.Fields, 1).
		Build()
	if err != nil {
		return nil, err
	}
	opts := []locastream.Option{
		locastream.WithServers(parallelism),
		locastream.WithCostModel(locastream.Model1G()),
		locastream.WithOptimizer(1.03, 1<<20, 1),
	}
	if hashOnly {
		opts = append(opts, locastream.WithHashRouting())
	}
	return locastream.NewSimulation(topo, opts...)
}

func run() error {
	withReconf, err := buildSim(false)
	if err != nil {
		return err
	}
	without, err := buildSim(true)
	if err != nil {
		return err
	}

	cfg := workload.DefaultFlickrConfig()
	cfg.Padding = padding
	genA := workload.NewFlickr(cfg)
	genB := workload.NewFlickr(cfg) // identical stream for the baseline

	fmt.Printf("minute  w/reconf(Ktuples/s)  w/o-reconf(Ktuples/s)\n")
	for minute := 1; minute <= minutes; minute++ {
		withReconf.NextWindow()
		without.NextWindow()
		for i := 0; i < tuplesPerMinute; i++ {
			withReconf.Inject(genA.Next())
			without.Inject(genB.Next())
		}
		fmt.Printf("%6d  %19.1f  %21.1f\n",
			minute,
			withReconf.ThroughputPerSec()/1000,
			without.ThroughputPerSec()/1000)

		if minute%10 == 0 && minute < minutes {
			plan, err := withReconf.Reoptimize()
			if err != nil {
				return err
			}
			fmt.Printf("        -- reconfiguration v%d: expected locality %.3f --\n",
				plan.Version, plan.ExpectedLocality)
		}
	}

	busy, label := without.Bottleneck()
	fmt.Printf("\nbaseline bottleneck: %s (%.1f ms busy in the last minute)\n", label, busy/1e6)
	fmt.Printf("final locality: w/reconf %.3f | w/o %.3f (last minute)\n",
		withReconf.Locality(), without.Locality())
	return nil
}
