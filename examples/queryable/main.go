// Queryable state: the tiered checkpoint store on the paper's running
// example. Geo-tagged messages flow through region and hashtag
// counters; the fault-tolerance subsystem checkpoints their keyed state
// into a segments-and-manifest store (WithStateStore), every snapshot
// stamped with a monotonically increasing checkpoint version. The state
// then becomes an asset in its own right:
//
//   - point-in-time reads: what did region7 count at version 2, and
//     what does it count now — without touching the data path;
//
//   - an HTTP read path: the autopilot serves GET /state/{op}[/{key}]
//     (?version=V) next to /status and /checkpoints;
//
//   - compaction: deltas fold into a base image, so a restart replays
//     O(live keys), not O(append history) — demonstrated here with a
//     second App reopening the same directory.
//
//     go run ./examples/queryable
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"os"
	"strconv"
	"time"

	locastream "github.com/locastream/locastream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		parallelism = 4
		regions     = 12
	)
	dir, err := os.MkdirTemp("", "locastream-state-*")
	if err != nil {
		return err
	}
	fmt.Printf("state store: %s\n\n", dir)

	topo, err := buildTopology(parallelism)
	if err != nil {
		return err
	}
	app, err := locastream.NewApp(topo,
		locastream.WithServers(parallelism),
		locastream.WithStateStore(dir),
	)
	if err != nil {
		return err
	}
	ap, err := app.NewAutopilot(locastream.AutopilotOptions{CostPerKey: 1})
	if err != nil {
		app.Stop()
		return err
	}
	ft, err := app.NewFaultTolerance(locastream.FaultToleranceOptions{Autopilot: ap})
	if err != nil {
		ap.Stop()
		app.Stop()
		return err
	}

	// Three traffic windows, a checkpoint after each: versions 1..3.
	rng := rand.New(rand.NewSource(7))
	now := time.Unix(0, 0)
	for w := 1; w <= 3; w++ {
		for i := 0; i < 4000; i++ {
			r := rng.Intn(regions)
			if err := app.Inject(locastream.Tuple{Values: []string{
				"region" + strconv.Itoa(r), "#tag" + strconv.Itoa(r),
			}}); err != nil {
				return err
			}
		}
		app.Drain()
		if _, err := ft.Checkpoint(now.Add(time.Duration(w) * time.Minute)); err != nil {
			return err
		}
		v, _ := app.StateVersion()
		fmt.Printf("window %d checkpointed as version %d\n", w, v)
	}

	// Point-in-time reads through the public API. A Counter's state is
	// its count as an 8-byte big-endian integer.
	fmt.Println("\nregion7 through time:")
	for v := uint64(1); v <= 3; v++ {
		res, found, err := app.QueryState("regions", "region7", v)
		if err != nil {
			return err
		}
		if found && len(res.Records[0].Data) == 8 {
			fmt.Printf("  version %d: count %d\n", v, binary.BigEndian.Uint64(res.Records[0].Data))
		}
	}

	// The same state over HTTP, exactly what `curl` would see against a
	// served autopilot handler.
	srv := httptest.NewServer(ap.Handler())
	body := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			return err.Error()
		}
		defer resp.Body.Close()
		buf := make([]byte, 512)
		n, _ := resp.Body.Read(buf)
		return fmt.Sprintf("%s -> %s", resp.Status, buf[:n])
	}
	fmt.Println("\nGET /state/regions/region7:")
	fmt.Println(" ", body("/state/regions/region7"))
	fmt.Println("GET /state/regions/region7?version=1:")
	fmt.Println(" ", body("/state/regions/region7?version=1"))
	srv.Close()

	// Compact, stop, reopen: the reload is bounded by live keys.
	if err := app.CompactState(); err != nil {
		return err
	}
	st, _ := app.StateStoreStats()
	fmt.Printf("\nafter compaction: %d segments, base version %d, %d bytes reclaimed\n",
		st.Segments, st.BaseVersion, st.ReclaimedBytes)
	if err := ft.Stop(); err != nil {
		return err
	}
	ap.Stop()
	app.Stop()

	app2, err := locastream.NewApp(topo,
		locastream.WithServers(parallelism),
		locastream.WithStateStore(dir),
	)
	if err != nil {
		return err
	}
	defer app2.Stop()
	st2, _ := app2.StateStoreStats()
	scan, err := app2.ScanState("regions", 0)
	if err != nil {
		return err
	}
	fmt.Printf("reopened: replayed %d records for %d live region keys (version %d)\n",
		st2.ReplayedRecords, scan.Keys, scan.Version)
	return nil
}

func buildTopology(parallelism int) (*locastream.Topology, error) {
	return locastream.NewTopology("geo-trends").
		AddOperator(locastream.Operator{
			Name: "regions", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "hashtags", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("regions", "hashtags", locastream.Fields, 1).
		Build()
}
