// Hotkey: hot-key splitting (partial key grouping) on a skewed stream.
// One hashtag suddenly takes over half the traffic — more than any
// single instance's fair share, so no routing table can balance it. With
// WithKeySplitting the autopilot promotes the heavy hitter to 2-choice
// replicated routing across two instances, the tail keeps its
// locality-optimized single-owner routing, and when the storm passes the
// key is demoted and its partial counts merge back into one owner —
// exact totals, zero loss.
//
//	go run ./examples/hotkey
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"

	locastream "github.com/locastream/locastream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		parallelism = 4
		tailKeys    = 16
		perWindow   = 6000
	)

	topo, err := locastream.NewTopology("hot-key").
		AddOperator(locastream.Operator{
			Name: "regions", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "hashtags", Parallelism: parallelism, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("regions", "hashtags", locastream.Fields, 1).
		Build()
	if err != nil {
		return err
	}

	app, err := locastream.NewApp(topo,
		locastream.WithServers(parallelism),
		locastream.WithKeySplitting(),
		locastream.WithSplitThreshold(1.5),
	)
	if err != nil {
		return err
	}
	defer app.Stop()

	ap, err := app.NewAutopilot(locastream.AutopilotOptions{CostPerKey: 1})
	if err != nil {
		return err
	}
	defer ap.Stop()

	rng := rand.New(rand.NewSource(7))
	hotInjected := uint64(0)
	window := func(hotPercent int) {
		for i := 0; i < perWindow; i++ {
			tag := "#tag" + strconv.Itoa(rng.Intn(tailKeys))
			if rng.Intn(100) < hotPercent {
				tag = "#viral"
				hotInjected++
			}
			region := "region" + strconv.Itoa(rng.Intn(tailKeys))
			if err := app.Inject(locastream.Tuple{Values: []string{region, tag}}); err != nil {
				log.Fatal(err)
			}
		}
		app.Drain()
	}

	// Windows 1-2: calm. 3-6: #viral takes 50% of the stream. 7-9: calm
	// again. Each window ends with one autopilot tick, the same loop that
	// deploys routing tables; promotion and demotion both need two
	// confirming windows, so one odd window never flaps a key.
	shares := []int{2, 2, 50, 50, 50, 50, 2, 2, 2}
	for w, share := range shares {
		window(share)
		ap.Tick()
		st := ap.Status()
		loads := app.Loads("hashtags")
		fmt.Printf("window %d (%2d%% hot): imbalance %.2f  split keys %d  routed-via-split %d\n",
			w+1, share, locastream.Imbalance(loads), len(st.SplitKeys), st.Split.Routed)
		for _, k := range st.SplitKeys {
			fmt.Printf("          %s/%q over instances %v\n", k.Op, k.Key, k.Replicas)
		}
	}

	st := ap.Status()
	fmt.Printf("\npromotions %d, demotions %d, merges applied %d\n",
		st.Promotions, st.Demotions, st.Split.MergesApplied)

	// After demotion the partials have merged back: one owner holds the
	// exact total.
	var counted uint64
	holders := 0
	for i := 0; i < parallelism; i++ {
		var n uint64
		err := app.ProcessorState("hashtags", i, func(p locastream.Processor) {
			n = p.(interface{ Count(string) uint64 }).Count("#viral")
		})
		if err != nil {
			return err
		}
		if n > 0 {
			holders++
		}
		counted += n
	}
	fmt.Printf("#viral: injected %d, counted %d, held by %d instance(s), tuples lost %d\n",
		hotInjected, counted, holders, app.TuplesLost())
	return nil
}
