package locastream_test

import (
	"fmt"
	"strconv"

	locastream "github.com/locastream/locastream"
)

// ExampleNewApp deploys the paper's evaluation application live, runs
// one online reconfiguration and reports the locality it unlocked.
func ExampleNewApp() {
	topo, err := locastream.NewTopology("geo-trends").
		AddOperator(locastream.Operator{
			Name: "regions", Parallelism: 2, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "hashtags", Parallelism: 2, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("regions", "hashtags", locastream.Fields, 1).
		Build()
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	app, err := locastream.NewApp(topo, locastream.WithServers(2))
	if err != nil {
		fmt.Println("deploy:", err)
		return
	}
	defer app.Stop()

	// Perfectly correlated region/hashtag pairs.
	for i := 0; i < 1000; i++ {
		k := strconv.Itoa(i % 8)
		_ = app.Inject(locastream.Tuple{Values: []string{"region" + k, "#tag" + k}})
	}
	app.Drain()

	plan, err := app.Reconfigure()
	if err != nil {
		fmt.Println("reconfigure:", err)
		return
	}
	fmt.Printf("expected locality after v%d: %.0f%%\n", plan.Version, plan.ExpectedLocality*100)
	// Output: expected locality after v1: 100%
}

// ExampleNewSimulation measures saturation throughput on the calibrated
// cluster model before and after routing optimization.
func ExampleNewSimulation() {
	topo, _ := locastream.NewTopology("eval").
		AddOperator(locastream.Operator{
			Name: "A", Parallelism: 4, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(0) },
		}).
		AddOperator(locastream.Operator{
			Name: "B", Parallelism: 4, Stateful: true,
			New: func() locastream.Processor { return locastream.NewCounter(1) },
		}).
		Connect("A", "B", locastream.Fields, 1).
		Build()
	sim, err := locastream.NewSimulation(topo,
		locastream.WithServers(4),
		locastream.WithCostModel(locastream.Model10G()),
	)
	if err != nil {
		fmt.Println("simulate:", err)
		return
	}
	inject := func() {
		for i := 0; i < 4000; i++ {
			k := strconv.Itoa(i % 16)
			sim.Inject(locastream.Tuple{Values: []string{k, "#" + k}, Padding: 8192})
		}
	}
	inject()
	if _, err := sim.Reoptimize(); err != nil {
		fmt.Println("reoptimize:", err)
		return
	}
	sim.NextWindow()
	inject()
	fmt.Printf("optimized locality: %.0f%%\n", sim.Locality()*100)
	// Output: optimized locality: 100%
}
