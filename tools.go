//go:build tools

// Package tools pins the versions of the CLI tools CI installs outside
// the module graph. The blank imports never build (the tools tag is
// never set); they exist so `go mod tidy -tags tools` would surface the
// pins and so the versions live next to the code they check. Keep the
// versions here and in .github/workflows/ci.yml (STATICCHECK_VERSION,
// GOVULNCHECK_VERSION) in lockstep: the workflow installs exactly these,
// caches the binaries, and fails closed if they drift from the cache
// key.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"  // v1.1.3
	_ "honnef.co/go/tools/cmd/staticcheck" // 2024.1.1
)
