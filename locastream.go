// Package locastream is a locality-aware stream processing library: a Go
// implementation of "Locality-Aware Routing in Stateful Streaming
// Applications" (Caneill, El Rheddane, Leroy, De Palma — Middleware
// 2016).
//
// Applications are directed acyclic graphs of operators replicated into
// parallel instances across servers. Stateful operators are fed through
// fields grouping (all tuples with the same key reach the same
// instance). locastream instruments those operators with SpaceSaving
// sketches, periodically builds the bipartite graph of correlated keys,
// partitions it under a load-balance bound, and installs the resulting
// routing tables online — migrating per-key state between instances
// without stopping the stream.
//
// Two execution backends share all of that machinery:
//
//   - App (NewApp) runs the topology with one goroutine per operator
//     instance and executes the full reconfiguration protocol with real
//     message passing.
//   - Simulation (NewSimulation) replays tuples through the same routing
//     layer against a calibrated cluster cost model, reproducing the
//     paper's saturation-throughput experiments deterministically.
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package locastream

import (
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/topology"
)

// Tuple is one unit of streaming data: named string fields plus an
// optional padding size standing in for payload bytes.
type Tuple = topology.Tuple

// Emit passes a produced tuple downstream.
type Emit = topology.Emit

// Processor is the user logic of one operator instance.
type Processor = topology.Processor

// Keyed is implemented by stateful processors whose per-key state can be
// migrated during reconfiguration.
type Keyed = topology.Keyed

// Mergeable is implemented by Keyed processors whose per-key state forms
// a commutative monoid (an associative, order-insensitive combine).
// Only operators whose processors implement it are eligible for hot-key
// splitting (WithKeySplitting).
type Mergeable = topology.Mergeable

// ProcessorFunc adapts a function to Processor (stateless operators).
type ProcessorFunc = topology.ProcessorFunc

// Operator describes one processing operator of the DAG.
type Operator = topology.Operator

// Grouping selects the routing policy of an edge.
type Grouping = topology.Grouping

// Edge routing policies (§2.2 of the paper).
const (
	// Shuffle distributes tuples round-robin (stateless recipients).
	Shuffle = topology.Shuffle
	// LocalOrShuffle prefers a co-located recipient instance.
	LocalOrShuffle = topology.LocalOrShuffle
	// Fields routes by key; required for stateful recipients.
	Fields = topology.Fields
)

// Topology is a validated application DAG. Build one with NewTopology.
type Topology = topology.Topology

// TopologyBuilder assembles a Topology.
type TopologyBuilder = topology.Builder

// NewTopology starts building an application DAG with the given name.
// The first operator added receives the external stream.
func NewTopology(name string) *TopologyBuilder { return topology.NewBuilder(name) }

// NewCounter returns a stateful processor counting key occurrences of the
// given tuple field — the operator used throughout the paper's
// evaluation. It implements Keyed, so its state migrates transparently.
func NewCounter(keyField int) *topology.Counter { return topology.NewCounter(keyField) }

// NewTopK returns a stateful trending-topics processor: per routing key
// (keyField, e.g. a region) it maintains an approximate top-k of
// valueField (e.g. hashtags) in a bounded SpaceSaving sketch — the
// paper's motivating application. Its per-key sketches migrate during
// reconfiguration.
func NewTopK(keyField, valueField, k, sketchCapacity int) *topology.TopK {
	return topology.NewTopK(keyField, valueField, k, sketchCapacity)
}

// MapFunc wraps a 1:1 tuple transformation as a stateless processor.
func MapFunc(fn func(Tuple) Tuple) Processor { return topology.MapFunc(fn) }

// FlatMapFunc wraps a 1:N tuple transformation as a stateless processor.
func FlatMapFunc(fn func(Tuple) []Tuple) Processor { return topology.FlatMapFunc(fn) }

// Passthrough forwards tuples unchanged.
func Passthrough() Processor { return topology.Passthrough() }

// Traffic summarizes local/remote transfers on stream edges. Locality()
// is the paper's headline metric: the fraction of fields-grouped
// transfers that stayed in memory.
type Traffic = metrics.Traffic

// Imbalance returns max/avg over per-instance loads (1.0 is perfect).
func Imbalance(loads []uint64) float64 { return metrics.Imbalance(loads) }
