package locastream

import (
	"fmt"
	"sync"
	"time"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/statestore"
	"github.com/locastream/locastream/internal/topology"
)

// Plan reports what a deployed routing configuration promises: the
// optimizer's expected locality over the statistics it saw and the
// partition's load imbalance.
type Plan = core.Plan

// Impact is the reconfiguration estimator's forecast: locality gained,
// traffic saved, and keys that would migrate.
type Impact = core.Impact

// App is a running locality-aware streaming application: one goroutine
// per operator instance, a manager implementing the paper's online
// reconfiguration protocol, and optional periodic auto-reconfiguration.
//
// All methods are safe for concurrent use; concurrent Reconfigure calls
// are serialized internally (the auto-reconfigure ticker uses the same
// path).
type App struct {
	topo  *Topology
	place *cluster.Placement
	live  *engine.Live
	mgr   *core.Manager

	keySplitting   bool
	splitThreshold float64
	clusterBlind   bool

	// autoMin/autoMax bound the elastic membership (0/0 without
	// WithAutoscale); planSeed fixes the rescale planner's tie-breaking.
	autoMin, autoMax int
	planSeed         int64

	stateStore *statestore.Store // non-nil with WithStateStore; closed on Stop

	reconfigMu sync.Mutex

	// faultTol is the attached fault-tolerance subsystem, if any; ScaleTo
	// drains keyed state through it before a scale-down.
	ftMu     sync.Mutex
	faultTol *FaultTolerance

	stopTicker chan struct{}
	tickerDone chan struct{}
}

// NewApp deploys the topology and starts its executors.
func NewApp(topo *Topology, opts ...Option) (*App, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	if topo == nil {
		return nil, fmt.Errorf("locastream: nil topology")
	}

	// WithAutoscale lays the placement out at max capacity and parks the
	// servers beyond the initial width; ScaleTo flips them in and out.
	initialActive := 0
	if o.autoscaleMax > 0 {
		if o.autoscaleMin < 1 || o.autoscaleMax < o.autoscaleMin {
			return nil, fmt.Errorf("locastream: invalid autoscale range [%d, %d]",
				o.autoscaleMin, o.autoscaleMax)
		}
		initialActive = o.servers
		if initialActive < o.autoscaleMin {
			initialActive = o.autoscaleMin
		}
		if initialActive > o.autoscaleMax {
			initialActive = o.autoscaleMax
		}
		o.servers = o.autoscaleMax
	}

	place, err := buildPlacement(topo, o)
	if err != nil {
		return nil, err
	}
	var activeMask []bool
	if initialActive > 0 && initialActive < o.servers {
		activeMask = make([]bool, o.servers)
		for s := 0; s < initialActive; s++ {
			activeMask[s] = true
		}
	}
	mode := fieldsMode(o)
	policies, err := engine.NewPolicies(topo, place, mode)
	if err != nil {
		return nil, err
	}
	src, err := engine.NewSourcePolicy(topo, place, o.sourceGrouping, mode)
	if err != nil {
		return nil, err
	}
	live, err := engine.NewLive(engine.LiveConfig{
		Topology:       topo,
		Placement:      place,
		Policies:       policies,
		SourcePolicy:   src,
		SourceGrouping: o.sourceGrouping,
		SourceKeyField: o.sourceKeyField,
		SketchCapacity: o.sketchCapacity,
		MaxInFlight:    o.maxInFlight,
		MaxBuffered:    o.maxBuffered,
		TCPTransport:   o.tcpTransport,
		KeySplitting:   o.keySplitting,
		ActiveServers:  activeMask,
	})
	if err != nil {
		return nil, err
	}
	mgr, err := core.NewManager(live, topo, place, core.ManagerOptions{
		Optimizer: o.optimizer,
		Store:     o.store,
	})
	if err != nil {
		live.Stop()
		return nil, err
	}
	if activeMask != nil {
		// The optimizer must partition over the initial membership, not
		// the full capacity, or it would assign keys to parked servers.
		activeList := make([]int, initialActive)
		for s := range activeList {
			activeList[s] = s
		}
		mgr.SetActiveServers(activeList)
	}
	var stateStore *statestore.Store
	if o.stateDir != "" {
		stateStore, err = statestore.Open(o.stateDir, statestore.Options{})
		if err != nil {
			live.Stop()
			return nil, fmt.Errorf("locastream: open state store: %w", err)
		}
	}

	app := &App{
		topo: topo, place: place, live: live, mgr: mgr,
		keySplitting: o.keySplitting, splitThreshold: o.splitThreshold,
		clusterBlind: o.optimizer.ClusterBlind,
		autoMin:      o.autoscaleMin, autoMax: o.autoscaleMax,
		planSeed:   o.optimizer.Seed,
		stateStore: stateStore,
	}
	if o.reconfigEvery > 0 {
		app.stopTicker = make(chan struct{})
		app.tickerDone = make(chan struct{})
		go app.autoReconfigure(o.reconfigEvery)
	}
	return app, nil
}

func buildPlacement(topo *Topology, o options) (*cluster.Placement, error) {
	var (
		place *cluster.Placement
		err   error
	)
	if o.placement != nil {
		place, err = cluster.NewExplicit(topo, o.servers, o.placement)
	} else {
		place, err = cluster.NewRoundRobin(topo, o.servers)
	}
	if err != nil {
		return nil, err
	}
	if o.racks != nil || o.clusters != nil {
		if err := place.AssignTiers(o.racks, o.clusters); err != nil {
			return nil, err
		}
	}
	if o.tierCosts != nil {
		if err := place.SetTierCosts(*o.tierCosts); err != nil {
			return nil, err
		}
	}
	return place, nil
}

func fieldsMode(o options) engine.FieldsMode {
	switch {
	case o.worstCase:
		return engine.FieldsWorstCase
	case o.hashOnly:
		return engine.FieldsHash
	default:
		return engine.FieldsTable
	}
}

func (a *App) autoReconfigure(every time.Duration) {
	defer close(a.tickerDone)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// Periodic optimization failures (e.g. during shutdown) are
			// not fatal to the stream; the next tick retries.
			_, _ = a.Reconfigure()
		case <-a.stopTicker:
			return
		}
	}
}

// Inject routes one external tuple into the topology, blocking when the
// configured MaxInFlight is reached.
func (a *App) Inject(t Tuple) error { return a.live.Inject(t) }

// Drain blocks until every injected tuple has been fully processed.
func (a *App) Drain() { a.live.Drain() }

// Reconfigure runs one full cycle of the paper's Algorithm 1: collect
// key-pair statistics, compute new routing tables, persist them, deploy
// them online and migrate the affected state. The stream keeps flowing.
func (a *App) Reconfigure() (*Plan, error) {
	a.reconfigMu.Lock()
	defer a.reconfigMu.Unlock()
	return a.mgr.Reconfigure()
}

// ReconfigureIfWorthwhile computes a candidate configuration but deploys
// it only when the impact estimator predicts the saved traffic to
// amortize the migration (costPerKey tuple transfers per moved key per
// statistics period) — the fine-grained manager policy the paper's
// conclusion calls for on volatile workloads. Either way the statistics
// window restarts.
func (a *App) ReconfigureIfWorthwhile(costPerKey float64) (*Plan, Impact, bool, error) {
	a.reconfigMu.Lock()
	defer a.reconfigMu.Unlock()
	return a.mgr.ReconfigureIfWorthwhile(costPerKey)
}

// Locality returns the fraction of fields-grouped transfers that stayed
// on one server since the application started.
func (a *App) Locality() float64 { return a.live.FieldsTraffic().Locality() }

// RackLocality returns the fraction of fields-grouped transfers that
// stayed on one server or within one rack.
func (a *App) RackLocality() float64 { return a.live.FieldsTraffic().RackLocality() }

// FieldsTraffic returns the aggregated fields-grouping traffic counters.
func (a *App) FieldsTraffic() Traffic { return a.live.FieldsTraffic() }

// Traffic returns the counters of one edge.
func (a *App) Traffic(from, to string) Traffic { return a.live.Traffic(from, to) }

// Loads returns tuples processed per instance of op.
func (a *App) Loads(op string) []uint64 { return a.live.Loads(op) }

// ProcessorState runs fn inside the executor goroutine that owns
// instance inst of op, giving race-free access to processor state.
func (a *App) ProcessorState(op string, inst int, fn func(Processor)) error {
	return a.live.ProcessorState(op, inst, func(p topology.Processor) { fn(p) })
}

// Servers returns the number of servers the application is deployed on
// — with WithAutoscale, the max capacity the placement was built for.
func (a *App) Servers() int { return a.place.Servers() }

// ActiveServers returns the current elastic membership width (equal to
// Servers without WithAutoscale).
func (a *App) ActiveServers() int { return a.live.ActiveServers() }

// Stop drains the stream, cancels auto-reconfiguration, terminates
// every executor and closes the state store when WithStateStore opened
// one. Idempotent.
func (a *App) Stop() {
	if a.stopTicker != nil {
		select {
		case <-a.stopTicker:
			// already closed
		default:
			close(a.stopTicker)
			<-a.tickerDone
		}
	}
	a.live.Stop()
	if a.stateStore != nil {
		_ = a.stateStore.Close()
	}
}
