package locastream

import (
	"fmt"
	"net/http"
	"time"

	"github.com/locastream/locastream/internal/control"
	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/scale"
)

// Decision is one autopilot journal entry: what the controller did on
// one tick and the signal values that drove it.
type Decision = control.Decision

// DecisionAction classifies a Decision.
type DecisionAction = control.Action

// Decision action values.
const (
	Deployed  = control.ActionDeployed
	Skipped   = control.ActionSkipped
	Cooldown  = control.ActionCooldown
	Recovered = control.ActionRecovered
	Errored   = control.ActionError
	// Promoted and Demoted record hot-key split transitions (see
	// WithKeySplitting).
	Promoted = control.ActionPromoted
	Demoted  = control.ActionDemoted
	// Scaled records an elastic-scaling operation (see WithAutoscale).
	Scaled = control.ActionScaled
	// Retuned records an adaptive flush policy change (see
	// AdaptiveFlush).
	Retuned = control.ActionRetuned
	// Federated records a cross-cluster key migration approved by the
	// federation layer (see WithClusters).
	Federated = control.ActionFederated
)

// AutopilotStatus is the autopilot's public state.
type AutopilotStatus = control.Status

// Signals is one autopilot tick's view of the engine.
type Signals = control.Snapshot

// AutopilotOptions tune the closed-loop reconfiguration controller.
// The zero value is usable: tick every 10s, deploy whenever the impact
// estimator finds a candidate worthwhile at cost 1 transfer per migrated
// key, no extra hysteresis.
type AutopilotOptions struct {
	// Period is the measurement/decision interval (default 10s).
	Period time.Duration
	// CostPerKey is the impact estimator's amortization threshold
	// (default 1).
	CostPerKey float64
	// MinGain is the minimum estimated locality gain required to deploy
	// (default 0, disabled).
	MinGain float64
	// Confirm requires this many consecutive worthwhile windows before
	// deploying (default 1).
	Confirm int
	// Cooldown skips this many ticks after each deployment (default 0).
	Cooldown int
	// SmoothingAlpha is the EWMA factor for the smoothed signal series
	// (default 0.3).
	SmoothingAlpha float64
	// History bounds the retained signal snapshots (default 128).
	History int
	// JournalCapacity bounds the in-memory decision journal
	// (default 256).
	JournalCapacity int
	// JournalPath, when set, additionally appends every decision to a
	// JSONL file.
	JournalPath string
	// SkipRecovery disables re-deploying the last persisted
	// configuration at startup.
	SkipRecovery bool

	// ScaleTargetLoad activates the elastic scaler on an App built with
	// WithAutoscale: the desired width is the window's fields-grouped
	// transfer count divided by this per-server target, clamped into
	// the autoscale range (0 keeps the scaler off; App.ScaleTo still
	// works manually).
	ScaleTargetLoad uint64
	// ScaleConfirm requires this many consecutive windows agreeing on a
	// direction before scaling (default 2); ScaleCooldown skips this
	// many ticks after each scale operation (default 1).
	ScaleConfirm  int
	ScaleCooldown int
	// ScaleMaxMoves caps the voluntary key moves of one scale-up's
	// rebalance (0 = unbounded; forced moves off leaving servers are
	// never capped).
	ScaleMaxMoves int

	// FederationConfirm requires this many consecutive windows in which
	// the cross-cluster move set clears the inter-cluster cost gate
	// before it deploys (default 1); FederationCooldown skips the gate
	// for this many ticks after a cross-cluster deployment (default 0).
	// Both apply only on an App built with WithClusters; intra-cluster
	// moves use the ordinary Confirm/Cooldown, tracked per cluster.
	FederationConfirm  int
	FederationCooldown int

	// AdaptiveFlush activates the transport flush tuner on an App built
	// with WithTCPTransport: sustained in-flight pressure widens the
	// wire batching policy (fewer, larger writev flushes), sustained
	// idleness walks it back toward the latency floor. Every applied
	// retune is journaled as a Retuned decision. No-op without a TCP
	// fabric.
	AdaptiveFlush bool
	// FlushHighWater/FlushLowWater are the in-flight depths framing the
	// tuner's dead band (defaults 4096 and HighWater/16).
	FlushHighWater int64
	FlushLowWater  int64
	// FlushConfirm requires this many consecutive pressured (idle)
	// windows before a retune (default 2); FlushCooldown skips this many
	// ticks after one (default 2).
	FlushConfirm  int
	FlushCooldown int
}

// Autopilot is the application's autonomous control plane: a periodic
// measure→decide→migrate loop around Reconfigure, with hysteresis, a
// decision journal and a live introspection handler. Create one with
// App.StartAutopilot (background loop) or App.NewAutopilot (manual
// Tick). All methods are safe for concurrent use.
type Autopilot struct {
	ctl  *control.Controller
	sink *control.JSONLSink
}

// NewAutopilot builds the control plane without starting its loop; drive
// it with Tick, or call Start later. Unless SkipRecovery is set, the
// last configuration persisted in the App's ConfigStore is re-deployed
// here, before the first tick. Incompatible with WithAutoReconfigure —
// the autopilot replaces that open-loop ticker.
func (a *App) NewAutopilot(opts AutopilotOptions) (*Autopilot, error) {
	if a.stopTicker != nil {
		return nil, fmt.Errorf("locastream: autopilot cannot run alongside WithAutoReconfigure")
	}
	copts := control.Options{
		Period:          opts.Period,
		CostPerKey:      opts.CostPerKey,
		MinGain:         opts.MinGain,
		Confirm:         opts.Confirm,
		Cooldown:        opts.Cooldown,
		SmoothingAlpha:  opts.SmoothingAlpha,
		History:         opts.History,
		JournalCapacity: opts.JournalCapacity,
		SkipRecovery:    opts.SkipRecovery,
	}
	if a.keySplitting {
		copts.Split = control.SplitOptions{
			Enabled:   true,
			Threshold: a.splitThreshold,
		}
	}
	if opts.AdaptiveFlush {
		copts.Flush = control.FlushOptions{
			Enabled:   true,
			HighWater: opts.FlushHighWater,
			LowWater:  opts.FlushLowWater,
			Confirm:   opts.FlushConfirm,
			Cooldown:  opts.FlushCooldown,
		}
	}
	var sink *control.JSONLSink
	if opts.JournalPath != "" {
		var err error
		if sink, err = control.OpenJSONLFile(opts.JournalPath); err != nil {
			return nil, err
		}
		copts.Sink = sink
	}
	ctl, err := control.New(a.live, lockedManager{app: a}, copts)
	if err != nil {
		if sink != nil {
			_ = sink.Close()
		}
		return nil, err
	}
	if a.keySplitting {
		ctl.AttachSplitEngine(a.live)
	}
	if a.place.Clusters() > 1 && !a.clusterBlind {
		ctl.AttachFederation(lockedManager{app: a}, control.FederationOptions{
			Enabled:  true,
			Clusters: a.place.Clusters(),
			Confirm:  opts.FederationConfirm,
			Cooldown: opts.FederationCooldown,
		})
	}
	if opts.AdaptiveFlush {
		ctl.AttachFlushEngine(a.live)
	}
	if a.stateStore != nil {
		ctl.SetStateReader(stateReader{s: a.stateStore})
	}
	if a.autoMax > 0 && opts.ScaleTargetLoad > 0 {
		err := ctl.AttachScaleEngine(scaleAdapter{app: a, maxMoves: opts.ScaleMaxMoves}, scale.Options{
			Min:        a.autoMin,
			Max:        a.autoMax,
			TargetLoad: opts.ScaleTargetLoad,
			Confirm:    opts.ScaleConfirm,
			Cooldown:   opts.ScaleCooldown,
			MaxMoves:   opts.ScaleMaxMoves,
		})
		if err != nil {
			if sink != nil {
				_ = sink.Close()
			}
			return nil, fmt.Errorf("locastream: attach elastic scaler: %w", err)
		}
	}
	return &Autopilot{ctl: ctl, sink: sink}, nil
}

// StartAutopilot builds the control plane and starts its periodic loop.
// Stop the autopilot before stopping the App.
func (a *App) StartAutopilot(opts AutopilotOptions) (*Autopilot, error) {
	ap, err := a.NewAutopilot(opts)
	if err != nil {
		return nil, err
	}
	ap.ctl.Start()
	return ap, nil
}

// lockedManager adapts *core.Manager to the controller under the App's
// reconfiguration lock, so autopilot ticks serialize with manual
// Reconfigure calls.
type lockedManager struct{ app *App }

func (m lockedManager) Candidate() (*core.Candidate, error) {
	m.app.reconfigMu.Lock()
	defer m.app.reconfigMu.Unlock()
	return m.app.mgr.Candidate()
}

func (m lockedManager) DeployCandidate(c *core.Candidate) error {
	m.app.reconfigMu.Lock()
	defer m.app.reconfigMu.Unlock()
	return m.app.mgr.DeployCandidate(c)
}

func (m lockedManager) FederatedCandidate(costPerKey float64) (*core.FederatedCandidate, error) {
	m.app.reconfigMu.Lock()
	defer m.app.reconfigMu.Unlock()
	return m.app.mgr.FederatedCandidate(costPerKey)
}

func (m lockedManager) MergeFederated(fc *core.FederatedCandidate, approved map[int]bool, approveCross bool) *core.Candidate {
	m.app.reconfigMu.Lock()
	defer m.app.reconfigMu.Unlock()
	return m.app.mgr.MergeFederated(fc, approved, approveCross)
}

func (m lockedManager) Recover() (uint64, bool, error) {
	m.app.reconfigMu.Lock()
	defer m.app.reconfigMu.Unlock()
	return m.app.mgr.Recover()
}

func (m lockedManager) Tables() map[string]*routing.Table {
	m.app.reconfigMu.Lock()
	defer m.app.reconfigMu.Unlock()
	return m.app.mgr.Tables()
}

// Tick runs one measure→decide→migrate round synchronously and returns
// the recorded decision. Batch drivers and tests use this instead of the
// background loop.
func (ap *Autopilot) Tick() Decision { return ap.ctl.Tick() }

// Start launches the periodic loop (no-op when already running).
func (ap *Autopilot) Start() { ap.ctl.Start() }

// Stop halts the periodic loop and closes the JSONL journal, if any.
// Idempotent; Tick remains callable afterwards (journal entries are then
// kept in memory only).
func (ap *Autopilot) Stop() error {
	ap.ctl.Stop()
	if ap.sink != nil {
		err := ap.sink.Close()
		ap.sink = nil
		return err
	}
	return nil
}

// Status returns the controller's current state.
func (ap *Autopilot) Status() AutopilotStatus { return ap.ctl.Status() }

// Decisions returns the last n journal entries, oldest first (all
// retained entries when n <= 0).
func (ap *Autopilot) Decisions(n int) []Decision { return ap.ctl.Journal().Recent(n) }

// Signals returns the retained signal snapshots, oldest first.
func (ap *Autopilot) Signals() []Signals { return ap.ctl.Snapshots() }

// Handler returns the live introspection API (GET /status, /snapshots,
// /journal, /tables as JSON), ready to mount on any http.Server.
func (ap *Autopilot) Handler() http.Handler { return ap.ctl.Handler() }
