package locastream

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/locastream/locastream/internal/workload"
)

// federationTopo is the cross-region pipeline: users feed topics, both
// stateful and fields-grouped, spread over every server.
func federationTopo(t testing.TB, parallelism int) *Topology {
	t.Helper()
	topo, err := NewTopology("federation").
		AddOperator(Operator{Name: "users", Parallelism: parallelism, Stateful: true,
			New: func() Processor { return NewCounter(0) }}).
		AddOperator(Operator{Name: "topics", Parallelism: parallelism, Stateful: true,
			New: func() Processor { return NewCounter(1) }}).
		Connect("users", "topics", Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestFederationDrill is the acceptance drill for hierarchical
// federation: two clusters of three servers ride a drifting cross-region
// workload over real TCP transport, with per-cluster control loops
// owning the local moves and the federation layer gating cross-cluster
// migrations at the 100× cost multiple. Deterministic — manual ticks,
// seeded workload and optimizer, Drain between windows, no sleeps. The
// drill must lose nothing, keep per-key counts exact, cut inter-cluster
// wire bytes per tuple at least 3× below an identically-provisioned
// cluster-blind baseline, land window locality within 5 points of a
// from-scratch two-level partition, and journal at least one federated
// decision whose fields re-read from the JSONL file prove the cost gate.
func TestFederationDrill(t *testing.T) {
	const (
		parallelism  = 6
		windowTuples = 6000
		costPerKey   = 0.1
	)
	rackOf := []int{0, 0, 1, 2, 2, 3}
	clusterOf := []int{0, 0, 0, 1, 1, 1}
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")

	// Both applications see byte-identical windows: the generator runs
	// once, up front. Windows 0-2 are ticked epochs (a migration wave
	// between each); window 3 is the measured steady window of epoch 2.
	gen := workload.NewCrossRegion(workload.CrossRegionConfig{
		Regions: 2, UsersPerRegion: 40, TopicsPerRegion: 40,
		UserSkew: 1.2, TopicSkew: 1.2, HomeBias: 0.95, Padding: 96,
		MigrantsPerEpoch: 8, Seed: 11,
	})
	windows := make([][]Tuple, 4)
	for w := range windows {
		if w > 0 && w < 3 {
			gen.NextEpoch()
		}
		windows[w] = make([]Tuple, windowTuples)
		for i := range windows[w] {
			windows[w][i] = gen.Next()
		}
	}

	build := func(blind bool, journal string) (*App, *Autopilot) {
		opts := []Option{
			WithServers(parallelism),
			WithRacks(rackOf),
			WithClusters(clusterOf),
			WithTCPTransport(),
			WithOptimizer(0, 0, 7),
			WithMaxInFlight(4096),
		}
		if blind {
			opts = append(opts, WithClusterBlindOptimizer())
		}
		app, err := NewApp(federationTopo(t, parallelism), opts...)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := app.NewAutopilot(AutopilotOptions{
			CostPerKey:  costPerKey,
			JournalPath: journal,
		})
		if err != nil {
			app.Stop()
			t.Fatal(err)
		}
		return app, ap
	}

	fed, fedAp := build(false, journalPath)
	defer fed.Stop()
	defer fedAp.Stop()
	flat, flatAp := build(true, "")
	defer flat.Stop()
	defer flatAp.Stop()

	if st := fedAp.Status(); st.Federation == nil || st.Federation.Clusters != 2 {
		t.Fatalf("federation layer not attached: %+v", st.Federation)
	}
	if st := flatAp.Status(); st.Federation != nil {
		t.Fatal("cluster-blind baseline must not run the federation layer")
	}

	want := make(map[string]uint64)
	inject := func(app *App, w int, record bool) {
		for _, tp := range windows[w] {
			if record {
				want[tp.Values[0]]++
			}
			if err := app.Inject(tp); err != nil {
				t.Fatal(err)
			}
		}
		app.Drain()
	}

	// Ticked epochs: window 0 optimizes away the hash fallback (the
	// bulk cross-cluster consolidation the federation gate must
	// approve), windows 1-2 chase the migration waves.
	for w := 0; w < 3; w++ {
		inject(fed, w, true)
		fedAp.Tick()
		inject(flat, w, false)
		flatAp.Tick()
	}

	// Measured steady window: compare per-tier wire deltas.
	fedBefore, flatBefore := fedAp.Status().Wire, flatAp.Status().Wire
	tb := fed.FieldsTraffic()
	inject(fed, 3, true)
	inject(flat, 3, false)
	ta := fed.FieldsTraffic()
	fedAfter, flatAfter := fedAp.Status().Wire, flatAp.Status().Wire

	fedCross := float64(fedAfter.TierBytesSent[3]-fedBefore.TierBytesSent[3]) / windowTuples
	flatCross := float64(flatAfter.TierBytesSent[3]-flatBefore.TierBytesSent[3]) / windowTuples
	t.Logf("inter-cluster wire bytes/tuple: federated=%.1f flat=%.1f (%.1fx)",
		fedCross, flatCross, flatCross/fedCross)
	if flatCross <= 0 {
		t.Fatal("cluster-blind baseline sent no inter-cluster bytes; drill is not exercising the link")
	}
	if flatCross < 3*fedCross {
		t.Fatalf("inter-cluster wire bytes/tuple: federated %.1f vs flat %.1f, want >= 3x reduction",
			fedCross, flatCross)
	}
	// The per-tier counters must account for every data tuple written.
	var tierSum uint64
	for _, n := range fedAfter.TierTuplesSent {
		tierSum += n
	}
	if tierSum != fedAfter.TuplesSent {
		t.Fatalf("per-tier tuple counters sum %d, transport sent %d", tierSum, fedAfter.TuplesSent)
	}

	// Zero loss and exact per-key counts through every migration.
	if lost := fed.TuplesLost(); lost != 0 {
		t.Fatalf("federated app lost %d tuples", lost)
	}
	for k, n := range want {
		total, _ := countKey(t, fed, "users", parallelism, k)
		if total != n {
			t.Fatalf("users[%s] counted %d, injected %d", k, total, n)
		}
	}

	// The journal is durable: close the sink and re-read the JSONL file.
	// At least one federated decision must be recoverable, and its own
	// fields must prove the 100× gate it cleared.
	if err := fedAp.Stop(); err != nil {
		t.Fatal(err)
	}
	var federated []Decision
	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("corrupt journal line: %v", err)
		}
		if d.Action == Federated {
			federated = append(federated, d)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(federated) == 0 {
		t.Fatal("journal holds no federated decision")
	}
	mult := fedAp.Status().Federation.CostMultiplier
	if mult != 100 {
		t.Fatalf("cost multiplier = %v, want the default 100", mult)
	}
	for i, d := range federated {
		if d.KeysToMigrate <= 0 || d.Version == 0 || d.Reason == "" {
			t.Fatalf("federated decision %d incomplete: %+v", i, d)
		}
		if threshold := costPerKey * mult * float64(d.KeysToMigrate); d.SavedTuplesPerPeriod < threshold {
			t.Fatalf("federated decision %d violates the gate: saves %.1f/period for %d keys, threshold %.1f",
				i, d.SavedTuplesPerPeriod, d.KeysToMigrate, threshold)
		}
		if d.Signals.WindowTraffic == 0 {
			t.Fatalf("federated decision %d lacks signals: %+v", i, d)
		}
	}

	// A from-scratch two-level partition fed only epoch-2 traffic is the
	// quality bar: the drilled application's window locality must be
	// within 5 points despite having chased two migration waves.
	fresh, err := NewApp(federationTopo(t, parallelism),
		WithServers(parallelism), WithRacks(rackOf), WithClusters(clusterOf),
		WithOptimizer(0, 0, 7), WithMaxInFlight(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Stop()
	inject(fresh, 2, false)
	if _, err := fresh.Reconfigure(); err != nil {
		t.Fatal(err)
	}
	fb := fresh.FieldsTraffic()
	inject(fresh, 3, false)
	fa := fresh.FieldsTraffic()

	drillLocality := float64(ta.LocalTuples-tb.LocalTuples) / float64(ta.Total()-tb.Total())
	freshLocality := float64(fa.LocalTuples-fb.LocalTuples) / float64(fa.Total()-fb.Total())
	t.Logf("window locality: drilled=%.3f fresh=%.3f; federated decisions=%d",
		drillLocality, freshLocality, len(federated))
	if drillLocality < freshLocality-0.05 {
		t.Fatalf("drilled locality %.3f fell more than 5 points below from-scratch %.3f",
			drillLocality, freshLocality)
	}
}
