package locastream

import (
	"fmt"
	"sort"
	"time"

	"github.com/locastream/locastream/internal/control"
	"github.com/locastream/locastream/internal/scale"
)

// ScaleResult describes one completed elastic scale operation.
type ScaleResult = control.ScaleResult

// ScaleStatus is the elastic-scaling slice of the autopilot's status,
// served alone on GET /scale.
type ScaleStatus = control.ScaleStatus

// ScaleTo resizes the cluster to n active servers, online. Scaling up
// attaches parked servers (lowest-numbered first) and migrates a
// bounded set of keys onto them; scaling down first demotes any hot-key
// split with a replica on a leaving server, drains keyed state through
// the attached fault-tolerance subsystem's checkpoint, migrates every
// key off the leavers with the §3.4 protocol while they still
// participate — zero tuple loss — and only then detaches them
// (highest-numbered first, dead servers preferred). The repartition is
// minimal-movement: every key on a staying server is pinned in place.
//
// With WithAutoscale the target must lie in [min, max]; without it, in
// [1, Servers()]. Serialized with Reconfigure and autopilot ticks.
func (a *App) ScaleTo(n int) (ScaleResult, error) { return a.scaleTo(n, 0) }

// scaleTo is ScaleTo with the autopilot's voluntary-move cap threaded
// through (0 = unbounded; forced moves are never capped).
func (a *App) scaleTo(n, maxMoves int) (ScaleResult, error) {
	lo, hi := a.autoMin, a.autoMax
	if hi == 0 {
		lo, hi = 1, a.place.Servers()
	}
	if n < lo || n > hi {
		return ScaleResult{}, fmt.Errorf("locastream: scale target %d outside [%d, %d]", n, lo, hi)
	}
	// Drain keyed state to the checkpoint store BEFORE taking the
	// reconfiguration lock: the supervisor's recovery path locks in the
	// opposite order (its own mutex first, then reconfigMu), so a drain
	// taken under reconfigMu could deadlock against an in-flight
	// recovery. Scaling down needs the leavers' state durable before it
	// moves; scaling up has nothing to drain.
	if n < a.live.ActiveServers() {
		a.ftMu.Lock()
		ft := a.faultTol
		a.ftMu.Unlock()
		if ft != nil {
			if _, err := ft.Checkpoint(time.Now()); err != nil {
				return ScaleResult{}, fmt.Errorf("locastream: drain checkpoint before scale-down: %w", err)
			}
		}
	}

	a.reconfigMu.Lock()
	defer a.reconfigMu.Unlock()

	capacity := a.place.Servers()
	cur := a.live.ActiveServers()
	if n == cur {
		return ScaleResult{From: cur, To: cur}, nil
	}

	fromUsable := a.live.UsableServers()
	activeAfter := make([]bool, capacity)
	for s := 0; s < capacity; s++ {
		activeAfter[s] = a.live.ServerActive(s)
	}

	var joining, leaving []int
	if n > cur {
		for s := 0; s < capacity && len(joining) < n-cur; s++ {
			if !activeAfter[s] && a.live.ServerAlive(s) {
				joining = append(joining, s)
			}
		}
		if len(joining) < n-cur {
			return ScaleResult{}, fmt.Errorf(
				"locastream: cannot scale to %d servers: only %d available", n, cur+len(joining))
		}
		for _, s := range joining {
			activeAfter[s] = true
		}
	} else {
		candidates := make([]int, 0, cur)
		for s := 0; s < capacity; s++ {
			if activeAfter[s] {
				candidates = append(candidates, s)
			}
		}
		// Remove dead servers first (their keys were already repaired
		// away), then the highest-numbered, deterministically.
		sort.Slice(candidates, func(i, j int) bool {
			di, dj := !a.live.ServerAlive(candidates[i]), !a.live.ServerAlive(candidates[j])
			if di != dj {
				return di
			}
			return candidates[i] > candidates[j]
		})
		leaving = candidates[:cur-n]
		for _, s := range leaving {
			activeAfter[s] = false
		}
	}

	toUsable := make([]bool, capacity)
	usableList := make([]int, 0, n)
	for s := 0; s < capacity; s++ {
		if activeAfter[s] && a.live.ServerAlive(s) {
			toUsable[s] = true
			usableList = append(usableList, s)
		}
	}
	if len(usableList) == 0 {
		return ScaleResult{}, fmt.Errorf(
			"locastream: scaling to %d servers would leave no usable server", n)
	}

	if n > cur {
		for _, s := range joining {
			if err := a.live.AddServer(s); err != nil {
				return ScaleResult{}, fmt.Errorf("locastream: add server %d: %w", s, err)
			}
		}
	} else {
		// A split replica on a leaving server is merged back into its
		// owner before the server leaves: demotion runs the §3.4 barrier,
		// so the partial is folded in, not abandoned.
		leavingSet := make(map[int]bool, len(leaving))
		for _, s := range leaving {
			leavingSet[s] = true
		}
		for _, si := range a.live.SplitSnapshot() {
			for _, r := range si.Replicas {
				if leavingSet[a.place.ServerOf(si.Op, r)] {
					if err := a.live.DemoteSplit(si.Op, si.Key); err != nil {
						return ScaleResult{}, fmt.Errorf(
							"locastream: demote split %s[%s] before scale-down: %w", si.Op, si.Key, err)
					}
					break
				}
			}
		}
	}

	// Future optimizer runs must partition over the new membership.
	if len(usableList) == capacity {
		a.mgr.SetActiveServers(nil)
	} else {
		a.mgr.SetActiveServers(usableList)
	}

	plan, err := scale.PlanRescale(scale.PlanInput{
		Place:       a.place,
		From:        fromUsable,
		To:          toUsable,
		Tables:      a.mgr.Tables(),
		Stats:       a.live.PeekPairStats(),
		Splits:      a.live.SplitSnapshot(),
		ExtraKeys:   a.live.StatefulKeys(),
		OwnerOf:     a.live.OwnerOf,
		StatefulOps: a.live.StatefulOps(),
		Seed:        a.planSeed,
		MaxMoves:    maxMoves,
	})
	if err != nil {
		return ScaleResult{}, fmt.Errorf("locastream: plan rescale: %w", err)
	}
	version, err := a.mgr.DeployRescale(plan.Tables, plan.Moves)
	if err != nil {
		return ScaleResult{}, fmt.Errorf("locastream: deploy rescale: %w", err)
	}
	// Leavers participated in the migration above (still attached); only
	// now do they actually leave the membership.
	for _, s := range leaving {
		if err := a.live.DecommissionServer(s); err != nil {
			return ScaleResult{}, fmt.Errorf("locastream: decommission server %d: %w", s, err)
		}
	}
	return ScaleResult{
		From: cur, To: n,
		MovedKeys: plan.MovedKeys, MoveBound: plan.Bound,
		Version: version,
	}, nil
}

// scaleAdapter implements control.ScaleEngine over the App, carrying
// the autopilot's voluntary-move cap into each ScaleTo.
type scaleAdapter struct {
	app      *App
	maxMoves int
}

func (s scaleAdapter) ActiveServers() int  { return s.app.live.ActiveServers() }
func (s scaleAdapter) ServerCapacity() int { return s.app.live.ServerCapacity() }
func (s scaleAdapter) ScaleTo(n int) (control.ScaleResult, error) {
	return s.app.scaleTo(n, s.maxMoves)
}
