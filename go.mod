module github.com/locastream/locastream

go 1.22
