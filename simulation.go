package locastream

import (
	"fmt"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/routing"
	"github.com/locastream/locastream/internal/topology"
)

// Simulation replays tuples through the real routing layer, processors
// and statistics sketches while charging a calibrated cluster cost model,
// reproducing the paper's saturation-throughput methodology without a
// physical testbed. It is single-threaded and deterministic.
type Simulation struct {
	topo  *Topology
	place *cluster.Placement
	sim   *engine.Sim
	opt   *core.Optimizer
}

// NewSimulation builds a simulation of the topology deployed per opts.
func NewSimulation(topo *Topology, opts ...Option) (*Simulation, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	if topo == nil {
		return nil, fmt.Errorf("locastream: nil topology")
	}
	place, err := buildPlacement(topo, o)
	if err != nil {
		return nil, err
	}
	mode := fieldsMode(o)
	policies, err := engine.NewPolicies(topo, place, mode)
	if err != nil {
		return nil, err
	}
	src, err := engine.NewSourcePolicy(topo, place, o.sourceGrouping, mode)
	if err != nil {
		return nil, err
	}
	sim, err := engine.NewSim(engine.SimConfig{
		Topology:        topo,
		Placement:       place,
		Model:           o.model,
		Policies:        policies,
		SourcePolicy:    src,
		SourceGrouping:  o.sourceGrouping,
		SourceKeyField:  o.sourceKeyField,
		SketchCapacity:  o.sketchCapacity,
		ChargeSourceHop: o.chargeSource,
	})
	if err != nil {
		return nil, err
	}
	opt, err := core.NewOptimizer(topo, place, o.optimizer)
	if err != nil {
		return nil, err
	}
	return &Simulation{topo: topo, place: place, sim: sim, opt: opt}, nil
}

// Inject processes one tuple through the whole DAG.
func (s *Simulation) Inject(t Tuple) { s.sim.Inject(t) }

// InjectAll injects tuples from gen until it reports done.
func (s *Simulation) InjectAll(gen func() (Tuple, bool)) {
	s.sim.InjectAll(func() (topology.Tuple, bool) { return gen() })
}

// Reoptimize collects the statistics gathered since the last call
// (resetting the sketches), computes new routing tables and installs
// them — the simulation counterpart of App.Reconfigure (state migration
// is instantaneous in simulated time, matching the paper's observation
// that deploying a configuration "is extremely fast", §4.4).
func (s *Simulation) Reoptimize() (*Plan, error) {
	tables, plan, err := s.opt.ComputeTables(s.sim.PairStats(true))
	if err != nil {
		return nil, err
	}
	s.sim.ApplyTables(tables)
	return plan, nil
}

// SetRoutingTable installs an explicit key→instance table for one
// operator (e.g. the synthetic identity tables of §4.2).
func (s *Simulation) SetRoutingTable(op string, assign map[string]int) {
	s.sim.ApplyTables(map[string]*routing.Table{
		op: {Version: 1, Assign: assign},
	})
}

// ThroughputPerSec returns the saturation throughput of the current
// measurement window (tuples per second of simulated time).
func (s *Simulation) ThroughputPerSec() float64 { return s.sim.ThroughputPerSec() }

// Bottleneck names the busiest simulated resource of the window.
func (s *Simulation) Bottleneck() (busyNs float64, label string) { return s.sim.Bottleneck() }

// Locality returns the fraction of fields-grouped transfers that stayed
// local in the current window.
func (s *Simulation) Locality() float64 { return s.sim.FieldsTraffic().Locality() }

// FieldsTraffic returns the aggregated fields-grouping traffic counters
// of the current window.
func (s *Simulation) FieldsTraffic() Traffic { return s.sim.FieldsTraffic() }

// RackLocality returns the fraction of fields-grouped transfers that
// stayed on one server or inside one rack in the current window.
func (s *Simulation) RackLocality() float64 { return s.sim.FieldsTraffic().RackLocality() }

// ClusterLocality returns the fraction of fields-grouped transfers that
// stayed inside one cluster in the current window; 1 − it is the
// fraction that paid the inter-cluster link.
func (s *Simulation) ClusterLocality() float64 { return s.sim.FieldsTraffic().ClusterLocality() }

// Loads returns tuples received per instance of op in the current
// window.
func (s *Simulation) Loads(op string) []uint64 { return s.sim.Loads(op) }

// Processor exposes instance inst of op for state inspection.
func (s *Simulation) Processor(op string, inst int) Processor {
	return s.sim.Processor(op, inst)
}

// NextWindow starts a new measurement window: usage, traffic and load
// counters reset; operator state and statistics sketches persist.
func (s *Simulation) NextWindow() { s.sim.ResetWindow() }

// Servers returns the number of simulated servers.
func (s *Simulation) Servers() int { return s.place.Servers() }
