package locastream

import (
	"errors"
	"fmt"

	"github.com/locastream/locastream/internal/control"
	"github.com/locastream/locastream/internal/metrics"
	"github.com/locastream/locastream/internal/statestore"
)

// StateRecord is one checkpointed key state served by the queryable
// state store, stamped with the checkpoint version that last wrote it.
type StateRecord = statestore.Record

// StateKeyResult is one point-in-time key lookup.
type StateKeyResult = statestore.KeyResult

// StateScanResult is one point-in-time operator scan.
type StateScanResult = statestore.ScanResult

// StateStoreStats are the queryable state store's measurements.
type StateStoreStats = metrics.StoreStats

// ErrStateCompacted is returned by the query methods when the requested
// version predates the store's compaction floor — its history was
// folded into the base image and can no longer be reconstructed.
var ErrStateCompacted = statestore.ErrCompacted

// errNoStateStore is returned by the query methods when the App was
// built without WithStateStore.
var errNoStateStore = errors.New("locastream: no state store attached (use WithStateStore)")

// QueryState serves one key's checkpointed state as of version
// (0 = latest), snapshot-consistent against the checkpoint version the
// read resolves to. found is false when the key had no checkpointed
// state at that version. Requires WithStateStore.
func (a *App) QueryState(op, key string, version uint64) (StateKeyResult, bool, error) {
	if a.stateStore == nil {
		return StateKeyResult{}, false, errNoStateStore
	}
	return a.stateStore.Lookup(op, key, version)
}

// ScanState serves one operator's full checkpointed state as of version
// (0 = latest), sorted by key then instance. Requires WithStateStore.
func (a *App) ScanState(op string, version uint64) (StateScanResult, error) {
	if a.stateStore == nil {
		return StateScanResult{}, errNoStateStore
	}
	return a.stateStore.Scan(op, version)
}

// StateOps lists the operators with checkpointed state, sorted.
// Requires WithStateStore.
func (a *App) StateOps() ([]string, error) {
	if a.stateStore == nil {
		return nil, errNoStateStore
	}
	return a.stateStore.Ops(), nil
}

// StateVersion returns the latest checkpoint version the state store
// stamped (0 before the first checkpoint). Requires WithStateStore.
func (a *App) StateVersion() (uint64, error) {
	if a.stateStore == nil {
		return 0, errNoStateStore
	}
	return a.stateStore.Version(), nil
}

// StateStoreStats returns the state store's measurements: segment and
// version gauges, append/compaction/replay counters, lookup latencies.
// Requires WithStateStore.
func (a *App) StateStoreStats() (StateStoreStats, error) {
	if a.stateStore == nil {
		return StateStoreStats{}, errNoStateStore
	}
	return a.stateStore.Stats(), nil
}

// CompactState seals the active segment and folds every durable
// snapshot into a fresh base image immediately (compaction otherwise
// runs in the background as checkpoints accumulate). Requires
// WithStateStore.
func (a *App) CompactState() error {
	if a.stateStore == nil {
		return errNoStateStore
	}
	if err := a.stateStore.Seal(); err != nil {
		return err
	}
	_, err := a.stateStore.Compact()
	return err
}

// stateReader adapts the store to the control plane's any-typed
// StateReader interface (the /state endpoints), translating the store's
// compaction-floor error to the one the handler maps to 410 Gone.
type stateReader struct{ s *statestore.Store }

func (r stateReader) LookupState(op, key string, version uint64) (any, bool, error) {
	res, found, err := r.s.Lookup(op, key, version)
	if err != nil {
		return nil, false, stateReadErr(err)
	}
	return res, found, nil
}

func (r stateReader) ScanState(op string, version uint64) (any, error) {
	res, err := r.s.Scan(op, version)
	if err != nil {
		return nil, stateReadErr(err)
	}
	return res, nil
}

func (r stateReader) StateOps() []string { return r.s.Ops() }

func stateReadErr(err error) error {
	if errors.Is(err, statestore.ErrCompacted) {
		return fmt.Errorf("%w: %v", control.ErrStateCompacted, err)
	}
	return err
}
