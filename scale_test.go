package locastream

import (
	"strconv"
	"testing"
)

func scaleTopo(t testing.TB, parallelism int) *Topology {
	t.Helper()
	topo, err := NewTopology("elastic").
		AddOperator(Operator{Name: "A", Parallelism: parallelism, Stateful: true,
			New: func() Processor { return NewCounter(0) }}).
		AddOperator(Operator{Name: "B", Parallelism: parallelism, Stateful: true,
			New: func() Processor { return NewCounter(1) }}).
		Connect("A", "B", Fields, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// injectRoundRobin streams tuples over a fixed key set (key i paired
// with itself, the perfectly correlated workload) and returns how many
// each key received.
func injectRoundRobin(t *testing.T, app *App, tuples, keys int) map[string]uint64 {
	t.Helper()
	counts := make(map[string]uint64, keys)
	for i := 0; i < tuples; i++ {
		k := "k" + strconv.Itoa(i%keys)
		counts[k]++
		if err := app.Inject(Tuple{Values: []string{k, k}}); err != nil {
			t.Fatal(err)
		}
	}
	app.Drain()
	return counts
}

// countKey sums a key's counter over the operator's instances and
// reports which instances hold a non-zero share.
func countKey(t *testing.T, app *App, op string, parallelism int, key string) (uint64, []int) {
	t.Helper()
	var total uint64
	var holders []int
	for i := 0; i < parallelism; i++ {
		var n uint64
		if err := app.ProcessorState(op, i, func(p Processor) {
			n = p.(interface{ Count(string) uint64 }).Count(key)
		}); err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			holders = append(holders, i)
		}
		total += n
	}
	return total, holders
}

func TestWithAutoscaleValidation(t *testing.T) {
	topo := scaleTopo(t, 4)
	if _, err := NewApp(topo, WithAutoscale(0, 4)); err == nil {
		t.Error("zero min accepted")
	}
	if _, err := NewApp(topo, WithAutoscale(3, 2)); err == nil {
		t.Error("max below min accepted")
	}
}

func TestScaleToBounds(t *testing.T) {
	app, err := NewApp(scaleTopo(t, 4), WithAutoscale(2, 4), WithServers(3))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	if app.Servers() != 4 || app.ActiveServers() != 3 {
		t.Fatalf("capacity %d active %d, want 4 and 3", app.Servers(), app.ActiveServers())
	}
	if _, err := app.ScaleTo(5); err == nil {
		t.Error("target above max accepted")
	}
	if _, err := app.ScaleTo(1); err == nil {
		t.Error("target below min accepted")
	}
	res, err := app.ScaleTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.From != 3 || res.To != 3 || res.MovedKeys != 0 {
		t.Fatalf("no-op scale = %+v", res)
	}

	// Without WithAutoscale the bounds are [1, capacity].
	fixed, err := NewApp(scaleTopo(t, 2), WithServers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Stop()
	if _, err := fixed.ScaleTo(3); err == nil {
		t.Error("target above capacity accepted")
	}
	if _, err := fixed.ScaleTo(2); err != nil {
		t.Errorf("identity scale on a fixed app: %v", err)
	}
}

// TestScaleUpDownPreservesState walks the membership 2 -> 4 -> 3 -> 2
// under a correlated workload: every resize migrates keyed state with
// the online protocol, so per-key counts stay exact across the whole
// churn, nothing is lost, and decommissioned servers end up holding no
// state and receiving no traffic.
func TestScaleUpDownPreservesState(t *testing.T) {
	const parallelism = 4
	app, err := NewApp(scaleTopo(t, parallelism),
		WithAutoscale(2, 4), WithServers(2),
		WithOptimizer(0, 0, 7), WithMaxInFlight(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	// The attached subsystem makes every scale-down drain state into a
	// checkpoint first.
	ft, err := app.NewFaultTolerance(FaultToleranceOptions{Store: NewMemoryCheckpointStore()})
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Stop()

	want := make(map[string]uint64)
	add := func(m map[string]uint64) {
		for k, n := range m {
			want[k] += n
		}
	}

	add(injectRoundRobin(t, app, 800, 12))
	if _, err := app.Reconfigure(); err != nil {
		t.Fatal(err)
	}
	add(injectRoundRobin(t, app, 800, 12))

	res, err := app.ScaleTo(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.From != 2 || res.To != 4 || app.ActiveServers() != 4 {
		t.Fatalf("scale-up = %+v, active %d", res, app.ActiveServers())
	}
	if res.MovedKeys > res.MoveBound {
		t.Fatalf("scale-up moved %d keys, bound %d", res.MovedKeys, res.MoveBound)
	}
	// The next optimization spreads the keys over the widened cluster.
	if _, err := app.Reconfigure(); err != nil {
		t.Fatal(err)
	}
	before := append([]uint64(nil), app.Loads("A")...)
	add(injectRoundRobin(t, app, 800, 12))
	after := app.Loads("A")
	var widened uint64
	for i := 2; i < parallelism; i++ {
		widened += after[i] - before[i]
	}
	if widened == 0 {
		t.Fatal("joining servers received no traffic after reconfiguration")
	}

	res, err = app.ScaleTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if app.ActiveServers() != 3 || res.MovedKeys > res.MoveBound {
		t.Fatalf("scale-down = %+v, active %d", res, app.ActiveServers())
	}
	if ft.Status().Fault.Checkpoints == 0 {
		t.Fatal("scale-down skipped the drain checkpoint")
	}
	before = append([]uint64(nil), app.Loads("A")...)
	add(injectRoundRobin(t, app, 800, 12))
	after = app.Loads("A")
	if d := after[3] - before[3]; d != 0 {
		t.Fatalf("decommissioned server still received %d tuples", d)
	}

	if _, err = app.ScaleTo(2); err != nil {
		t.Fatal(err)
	}
	add(injectRoundRobin(t, app, 800, 12))

	if lost := app.TuplesLost(); lost != 0 {
		t.Fatalf("lost %d tuples across the churn", lost)
	}
	for _, op := range []string{"A", "B"} {
		for k, n := range want {
			total, holders := countKey(t, app, op, parallelism, k)
			if total != n {
				t.Fatalf("%s[%s] counted %d, injected %d", op, k, total, n)
			}
			for _, h := range holders {
				if h >= 2 {
					t.Fatalf("%s[%s] left state on decommissioned instance %d", op, k, h)
				}
			}
		}
	}
}

// TestScaleToOneDemotesSplits: scaling to a single server first demotes
// every hot-key split (their replicas necessarily span leaving servers),
// merging partials back into one owner — exact counts, zero loss, one
// holder.
func TestScaleToOneDemotesSplits(t *testing.T) {
	const parallelism = 4
	app, err := NewApp(scaleTopo(t, parallelism),
		WithAutoscale(1, 4), WithServers(4), WithKeySplitting(),
		WithOptimizer(0, 0, 7), WithMaxInFlight(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	ap, err := app.NewAutopilot(AutopilotOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Stop()

	var hotTotal uint64
	injectHot := func() {
		for i := 0; i < 800; i++ {
			k := "t" + strconv.Itoa(i%16)
			if i%100 < 60 {
				k = "hot"
				hotTotal++
			}
			if err := app.Inject(Tuple{Values: []string{k, k}}); err != nil {
				t.Fatal(err)
			}
		}
		app.Drain()
	}

	// Two hot windows promote the hot key (splitter Confirm = 2).
	injectHot()
	ap.Tick()
	injectHot()
	ap.Tick()
	if st := ap.Status(); st.Promotions == 0 || len(st.SplitKeys) == 0 {
		t.Fatalf("hot key never promoted: %+v", st)
	}

	res, err := app.ScaleTo(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.To != 1 || app.ActiveServers() != 1 {
		t.Fatalf("scale-to-1 = %+v, active %d", res, app.ActiveServers())
	}
	if splits := app.live.SplitSnapshot(); len(splits) != 0 {
		t.Fatalf("splits survived the scale-down: %+v", splits)
	}

	// The lone server carries the whole stream afterwards.
	injectHot()
	if lost := app.TuplesLost(); lost != 0 {
		t.Fatalf("lost %d tuples", lost)
	}
	for _, op := range []string{"A", "B"} {
		total, holders := countKey(t, app, op, parallelism, "hot")
		if total != hotTotal {
			t.Fatalf("%s[hot] counted %d, injected %d", op, total, hotTotal)
		}
		if len(holders) != 1 || holders[0] != 0 {
			t.Fatalf("%s[hot] held by instances %v, want only instance 0", op, holders)
		}
	}
}
