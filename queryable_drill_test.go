package locastream_test

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	locastream "github.com/locastream/locastream"
	"github.com/locastream/locastream/internal/engine"
	"github.com/locastream/locastream/internal/statestore"
)

// teeStore checkpoints into both the legacy JSONL FileStore and the
// tiered statestore, so the drill can prove the two stores reconstruct
// byte-identical images from the same append history.
type teeStore struct {
	legacy locastream.CheckpointStore
	tiered *statestore.Store
}

func (t *teeStore) Append(recs []engine.KeyState) error {
	_, err := t.AppendVersion(recs)
	return err
}

func (t *teeStore) AppendVersion(recs []engine.KeyState) (uint64, error) {
	if err := t.legacy.Append(recs); err != nil {
		return 0, err
	}
	return t.tiered.AppendVersion(recs)
}

func (t *teeStore) Load() ([]engine.KeyState, error) { return t.tiered.Load() }
func (t *teeStore) MaybeCompact() bool               { return t.tiered.MaybeCompact() }

// TestQueryableStateDrill is the issue's kill→compact→restart drill:
// the same checkpoint stream lands in the legacy JSONL store and the
// tiered store; a server is killed and recovered from the tiered store;
// compaction folds the history; a reopened store must serve an image
// byte-identical to what the legacy store replays from its full JSONL
// history — while replaying only O(live keys) records.
func TestQueryableStateDrill(t *testing.T) {
	dir := t.TempDir()
	legacy, err := locastream.NewFileCheckpointStore(filepath.Join(dir, "legacy.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := statestore.Open(filepath.Join(dir, "tiered"), statestore.Options{
		MaxSegmentBytes: 2048, // force rotation so compaction has sealed input
	})
	if err != nil {
		t.Fatal(err)
	}
	tee := &teeStore{legacy: legacy, tiered: tiered}

	app, err := locastream.NewApp(geoTopology(t, 3), locastream.WithServers(3))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	ap, err := app.NewAutopilot(locastream.AutopilotOptions{CostPerKey: 1})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := app.NewFaultTolerance(locastream.FaultToleranceOptions{
		SuspectAfter: time.Second,
		ConfirmAfter: 2 * time.Second,
		Store:        tee,
		Autopilot:    ap,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Stop()

	// Several checkpointed windows build real history: counts advance
	// between snapshots, so deltas supersede earlier records.
	t0 := time.Unix(5000, 0)
	injectGeo(t, app, 2400)
	if d := ap.Tick(); d.Action != locastream.Deployed {
		t.Fatalf("tick = %s (%s), want deployed", d.Action, d.Reason)
	}
	for w := 0; w < 4; w++ {
		injectGeo(t, app, 1200)
		if _, err := ft.Checkpoint(t0.Add(time.Duration(w) * time.Minute)); err != nil {
			t.Fatal(err)
		}
	}

	// Kill a server; the manual clock confirms it and recovery restores
	// from the tee (i.e. the tiered store's image).
	tk := t0.Add(time.Hour)
	if err := ft.Tick(tk); err != nil {
		t.Fatal(err)
	}
	if err := app.KillServer(2); err != nil {
		t.Fatal(err)
	}
	for _, d := range []time.Duration{1, 2} {
		if err := ft.Tick(tk.Add(d * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	app.Drain()
	if reports := ft.Recoveries(); len(reports) != 1 || reports[0].RestoredKeys == 0 {
		t.Fatalf("recoveries = %+v, want one with restored keys", reports)
	}

	// The supervisor stamped versions through the tee and reports the
	// tiered store's stats on its status.
	st := ft.Status()
	if st.StateVersion == 0 || st.StateVersion != tiered.Version() {
		t.Fatalf("status state version = %d, store says %d", st.StateVersion, tiered.Version())
	}

	// Byte-identical images before compaction: full JSONL replay versus
	// the tiered store's index.
	wantImage, err := legacy.Load()
	if err != nil {
		t.Fatal(err)
	}
	gotImage, err := tiered.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantImage, gotImage) {
		t.Fatalf("images diverge before compaction:\nlegacy %+v\ntiered %+v", wantImage, gotImage)
	}

	// Compact (seal first so everything durable folds), close, reopen:
	// the restored image must still match the legacy store's replay of
	// the complete history, from a replay bounded by live keys.
	if err := tiered.Seal(); err != nil {
		t.Fatal(err)
	}
	cst, err := tiered.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cst.FoldedSegments == 0 || cst.BaseVersion == 0 {
		t.Fatalf("compaction folded nothing: %+v", cst)
	}
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := statestore.Open(filepath.Join(dir, "tiered"), statestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	restored, err := reopened.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantImage, restored) {
		t.Fatalf("restored image diverges from legacy replay:\nlegacy %+v\ntiered %+v", wantImage, restored)
	}
	liveRecords := uint64(len(wantImage))
	replayed := reopened.Stats().ReplayedRecords
	if replayed > liveRecords+8 {
		t.Fatalf("compacted reload replayed %d records for a %d-record live image — not O(K)",
			replayed, liveRecords)
	}
}

// TestWithStateStoreEndToEnd exercises the WithStateStore wiring: the
// fault-tolerance subsystem checkpoints into the App's store by
// default, QueryState serves point-in-time reads, and the autopilot
// handler exposes /state.
func TestWithStateStoreEndToEnd(t *testing.T) {
	dir := t.TempDir()
	app, err := locastream.NewApp(geoTopology(t, 3),
		locastream.WithServers(3),
		locastream.WithStateStore(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()
	ap, err := app.NewAutopilot(locastream.AutopilotOptions{CostPerKey: 1})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := app.NewFaultTolerance(locastream.FaultToleranceOptions{Autopilot: ap})
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Stop()

	t0 := time.Unix(5000, 0)
	for w := 1; w <= 2; w++ {
		injectGeo(t, app, 1200)
		if _, err := ft.Checkpoint(t0.Add(time.Duration(w) * time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := app.StateVersion(); err != nil || v != 2 {
		t.Fatalf("state version = %d, %v, want 2", v, err)
	}

	// Point-in-time: region0's count at version 1 is less than at 2.
	r1, found, err := app.QueryState("regions", "region0", 1)
	if err != nil || !found {
		t.Fatalf("QueryState v1: found=%v err=%v", found, err)
	}
	r2, found, err := app.QueryState("regions", "region0", 2)
	if err != nil || !found {
		t.Fatalf("QueryState v2: found=%v err=%v", found, err)
	}
	if r1.Version != 1 || r2.Version != 2 || reflect.DeepEqual(r1.Records, r2.Records) {
		t.Fatalf("point-in-time reads identical: v1=%+v v2=%+v", r1, r2)
	}
	scan, err := app.ScanState("regions", 0)
	if err != nil || scan.Keys != 12 {
		t.Fatalf("ScanState = %+v, %v, want 12 keys", scan, err)
	}
	if ops, err := app.StateOps(); err != nil || len(ops) != 2 {
		t.Fatalf("StateOps = %v, %v", ops, err)
	}

	// The /state endpoints through the autopilot handler.
	h := ap.Handler()
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/state"); code != 200 {
		t.Fatalf("GET /state = %d: %s", code, body)
	}
	code, body := get("/state/regions/region0?version=1")
	if code != 200 {
		t.Fatalf("GET /state/regions/region0?version=1 = %d: %s", code, body)
	}
	var servedKey locastream.StateKeyResult
	if err := json.Unmarshal([]byte(body), &servedKey); err != nil {
		t.Fatal(err)
	}
	if servedKey.Version != 1 || !reflect.DeepEqual(servedKey.Records, r1.Records) {
		t.Fatalf("served lookup %+v != API lookup %+v", servedKey, r1)
	}
	if code, _ := get("/state/regions/region0?version=abc"); code != 400 {
		t.Fatalf("bad version = %d, want 400", code)
	}
	if code, _ := get("/state/regions/no-such-key"); code != 404 {
		t.Fatalf("unknown key = %d, want 404", code)
	}
	var servedScan locastream.StateScanResult
	code, body = get("/state/regions")
	if code != 200 {
		t.Fatalf("GET /state/regions = %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &servedScan); err != nil {
		t.Fatal(err)
	}
	if servedScan.Keys != 12 {
		t.Fatalf("served scan %+v, want 12 keys", servedScan)
	}

	// Compact away version 1, then the endpoint answers 410 Gone.
	if err := app.CompactState(); err != nil {
		t.Fatal(err)
	}
	if stats, err := app.StateStoreStats(); err != nil || stats.BaseVersion != 2 {
		t.Fatalf("stats after compaction = %+v, %v, want base version 2", stats, err)
	}
	if code, body := get("/state/regions/region0?version=1"); code != 410 {
		t.Fatalf("compacted version = %d (%s), want 410", code, body)
	}
	if _, _, err := app.QueryState("regions", "region0", 1); err == nil {
		t.Fatal("QueryState below the floor succeeded after compaction")
	}

	// /checkpoints carries the store's stats and the state version.
	code, body = get("/checkpoints")
	if code != 200 {
		t.Fatalf("GET /checkpoints = %d", code)
	}
	var served locastream.FaultStatus
	if err := json.Unmarshal([]byte(body), &served); err != nil {
		t.Fatal(err)
	}
	if served.StateVersion != 2 || served.Store == nil {
		t.Fatalf("/checkpoints status = StateVersion %d Store %v", served.StateVersion, served.Store)
	}
}
