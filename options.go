package locastream

import (
	"time"

	"github.com/locastream/locastream/internal/cluster"
	"github.com/locastream/locastream/internal/core"
	"github.com/locastream/locastream/internal/simnet"
	"github.com/locastream/locastream/internal/topology"
)

// options collects the tunables shared by App and Simulation.
type options struct {
	servers        int
	racks          []int
	clusters       []int
	tierCosts      *cluster.TierCosts
	placement      map[string][]int
	sourceGrouping topology.Grouping
	sourceKeyField int
	sketchCapacity int
	maxInFlight    int
	maxBuffered    int
	tcpTransport   bool
	hashOnly       bool
	worstCase      bool
	optimizer      core.OptimizerOptions
	store          core.ConfigStore
	reconfigEvery  time.Duration
	model          simnet.Model
	chargeSource   bool
	keySplitting   bool
	splitThreshold float64
	stateDir       string
	autoscaleMin   int
	autoscaleMax   int
}

func defaultOptions() options {
	return options{
		servers:        1,
		sourceGrouping: topology.Fields,
		sketchCapacity: 1 << 14,
		model:          simnet.Default10G(),
	}
}

// Option configures App and Simulation construction.
type Option interface {
	apply(*options)
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithServers deploys the application on n servers; instance i of every
// operator is placed on server i mod n (the paper's deployment when
// parallelism == n).
func WithServers(n int) Option {
	return optionFunc(func(o *options) { o.servers = n })
}

// WithRacks assigns servers to racks (one entry per server). Rack
// information enables the hierarchical-locality extension: rack-aware
// partitioning (WithRackAwareOptimizer) and per-rack traffic accounting
// (Traffic.RackLocality).
func WithRacks(rackOf []int) Option {
	return optionFunc(func(o *options) { o.racks = append([]int(nil), rackOf...) })
}

// WithRackAwareOptimizer partitions keys hierarchically — first across
// racks, then across each rack's servers — minimizing traffic over the
// expensive inter-rack links. Requires WithRacks.
func WithRackAwareOptimizer() Option {
	return optionFunc(func(o *options) { o.optimizer.RackAware = true })
}

// WithClusters assigns servers to clusters (one entry per server),
// adding the third locality tier: server → rack → cluster. Racks
// (WithRacks) must nest inside clusters. A multi-cluster placement
// switches the optimizer to the two-level cluster partition (keys are
// split across clusters by the key graph first, then across each
// cluster's servers), turns on per-tier traffic and wire accounting
// (Traffic.ClusterLocality, WireStats.TierBytesSent), and makes an
// autopilot run hierarchically: per-cluster control loops own the local
// moves while a federation layer gates cross-cluster migrations at the
// inter-cluster cost multiple, journaling approvals as Federated
// decisions.
func WithClusters(clusterOf []int) Option {
	return optionFunc(func(o *options) { o.clusters = append([]int(nil), clusterOf...) })
}

// WithClusterBlindOptimizer keeps the flat partitioner on a
// multi-cluster placement (WithClusters) — the baseline for measuring
// what the two-level cluster partition buys. Per-tier traffic
// accounting and simulation costs still apply; only the partitioner
// (and, on an App, the autopilot's federation layer) ignores the
// cluster boundary.
func WithClusterBlindOptimizer() Option {
	return optionFunc(func(o *options) { o.optimizer.ClusterBlind = true })
}

// WithTierCosts overrides the relative transfer costs of the four
// locality tiers (same server, same rack, same cluster, cross-cluster);
// the defaults are 0, 1, 4, 100. Costs must be non-negative and
// non-decreasing. The cross-cluster over same-rack ratio is the
// federation layer's migration cost multiple (100× by default).
func WithTierCosts(server, rack, clusterTier, region float64) Option {
	return optionFunc(func(o *options) {
		o.tierCosts = &cluster.TierCosts{server, rack, clusterTier, region}
	})
}

// WithPlacement overrides the round-robin placement with an explicit
// per-operator assignment of instance index to server.
func WithPlacement(assign map[string][]int) Option {
	return optionFunc(func(o *options) {
		copied := make(map[string][]int, len(assign))
		for op, servers := range assign {
			copied[op] = append([]int(nil), servers...)
		}
		o.placement = copied
	})
}

// WithSourceGrouping sets how externally injected tuples are routed to
// the source operator (default: Fields on field keyField).
func WithSourceGrouping(g Grouping, keyField int) Option {
	return optionFunc(func(o *options) {
		o.sourceGrouping = g
		o.sourceKeyField = keyField
	})
}

// WithSketchCapacity bounds the per-instance SpaceSaving pair sketches
// (default 16384 pairs; the paper finds a few MB per instance ample).
// Zero disables instrumentation and, with it, optimization.
func WithSketchCapacity(n int) Option {
	return optionFunc(func(o *options) { o.sketchCapacity = n })
}

// WithMaxInFlight bounds externally injected unprocessed tuples,
// providing source backpressure in App (0 = unlimited).
func WithMaxInFlight(n int) Option {
	return optionFunc(func(o *options) { o.maxInFlight = n })
}

// WithMaxBuffered bounds, per operator instance, the tuples buffered for
// keys whose state is still in transit during a migration or a failure
// recovery (0 = unlimited). Overflow is dropped and counted as tuple
// loss, so a slow restore degrades to bounded loss instead of unbounded
// memory.
func WithMaxBuffered(n int) Option {
	return optionFunc(func(o *options) { o.maxBuffered = n })
}

// WithChargedSourceHop also bills the network cost of delivering
// externally injected tuples to the source operator in Simulation. The
// default (off) matches the paper's setup, where sources generate data
// in place and the measured pipeline starts at the first operator.
func WithChargedSourceHop() Option {
	return optionFunc(func(o *options) { o.chargeSource = true })
}

// WithTCPTransport routes every cross-server message of App through real
// localhost TCP connections (one per server pair), exercising
// serialization and the kernel network path; same-server messages stay
// in memory. This reproduces the local/remote asymmetry of a physical
// cluster inside one process.
func WithTCPTransport() Option {
	return optionFunc(func(o *options) { o.tcpTransport = true })
}

// WithKeySplitting enables hot-key splitting (partial key grouping,
// Nasir et al.): the autopilot may promote a heavy-hitter key of a
// mergeable stateful operator to replicated 2-choice routing, spreading
// its load over several instances, and demote it — merging the partials
// back into one owner — once it cools. Only keys promoted this way lose
// single-server locality; the tail keeps the paper's routing-table
// treatment. Requires an autopilot (the splitter runs on its ticks) and
// operators whose processors implement Mergeable.
func WithKeySplitting() Option {
	return optionFunc(func(o *options) { o.keySplitting = true })
}

// WithSplitThreshold sets the hot-key promotion threshold as a multiple
// of an operator's fair per-instance share of one statistics window
// (default 1.5): a key routing more than mult × (total/parallelism)
// tuples is a promotion candidate. Implies nothing unless
// WithKeySplitting is set.
func WithSplitThreshold(mult float64) Option {
	return optionFunc(func(o *options) { o.splitThreshold = mult })
}

// WithAutoscale builds the application for elastic scaling between min
// and max servers. The placement is laid out at max capacity; servers
// beyond the initial width (WithServers, clamped into [min, max]) start
// parked — executors running with open mailboxes but no transport
// connections and excluded from routing. App.ScaleTo resizes the active
// membership at runtime with a minimal-movement repartition, and an
// autopilot built with AutopilotOptions.ScaleTargetLoad closes the loop
// automatically from the measured window traffic.
func WithAutoscale(min, max int) Option {
	return optionFunc(func(o *options) {
		o.autoscaleMin = min
		o.autoscaleMax = max
	})
}

// WithHashRouting disables routing tables: fields grouping stays pure
// hash, the paper's baseline.
func WithHashRouting() Option {
	return optionFunc(func(o *options) { o.hashOnly = true })
}

// WithWorstCaseRouting forces every fields-grouped tuple over the
// network, the paper's lower bound (simulation benchmarks only).
func WithWorstCaseRouting() Option {
	return optionFunc(func(o *options) { o.worstCase = true })
}

// WithOptimizer tunes the routing optimizer: alpha is the load-imbalance
// bound (0 selects the paper's 1.03), maxEdges bounds the key pairs
// considered per operator pair (0 keeps all), seed fixes tie-breaking.
func WithOptimizer(alpha float64, maxEdges int, seed int64) Option {
	return optionFunc(func(o *options) {
		o.optimizer.Alpha = alpha
		o.optimizer.MaxEdges = maxEdges
		o.optimizer.Seed = seed
	})
}

// WithStateStore attaches a tiered queryable checkpoint store rooted at
// dir: checkpoints land in append-only segment files under a versioned
// manifest, background compaction folds history into a base image, and
// the state becomes readable — point in time — through App.QueryState /
// App.ScanState and, with an autopilot, GET /state/{op}[/{key}]. A
// FaultTolerance created without an explicit Store or Dir checkpoints
// into this store automatically. The App owns the store and closes it
// on Stop.
func WithStateStore(dir string) Option {
	return optionFunc(func(o *options) { o.stateDir = dir })
}

// WithConfigStore persists every routing configuration before deployment
// (fault tolerance, §3.4). FileStore writes JSON under a directory.
func WithConfigStore(store ConfigStore) Option {
	return optionFunc(func(o *options) { o.store = store })
}

// WithAutoReconfigure makes App run the full collect-optimize-deploy
// cycle on a fixed period, the paper's online mode. Stop cancels it.
func WithAutoReconfigure(every time.Duration) Option {
	return optionFunc(func(o *options) { o.reconfigEvery = every })
}

// CostModel is the calibrated cluster cost model used by Simulation.
type CostModel = simnet.Model

// Model10G returns the cost model calibrated for the paper's 10 Gb/s
// testbed.
func Model10G() CostModel { return simnet.Default10G() }

// Model1G returns the 1 Gb/s (throttled network) model of §4.4.
func Model1G() CostModel { return simnet.Default1G() }

// WithCostModel selects the simulation cost model (default Model10G).
func WithCostModel(m CostModel) Option {
	return optionFunc(func(o *options) { o.model = m })
}

// ConfigStore persists routing configurations.
type ConfigStore = core.ConfigStore

// NewFileConfigStore returns a ConfigStore writing JSON files under dir.
func NewFileConfigStore(dir string) ConfigStore { return &core.FileStore{Dir: dir} }

// NewMemoryConfigStore returns an in-process ConfigStore.
func NewMemoryConfigStore() ConfigStore { return &core.MemoryStore{} }
