package locastream_test

import (
	"strconv"
	"testing"

	locastream "github.com/locastream/locastream"
)

func TestAppWithRacksAndRackAwareOptimizer(t *testing.T) {
	topo := geoTopology(t, 4)
	app, err := locastream.NewApp(topo,
		locastream.WithServers(4),
		locastream.WithRacks([]int{0, 0, 1, 1}),
		locastream.WithRackAwareOptimizer(),
		locastream.WithOptimizer(1.03, 0, 17),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	for i := 0; i < 2000; i++ {
		k := strconv.Itoa(i % 16)
		if err := app.Inject(locastream.Tuple{Values: []string{"r" + k, "#" + k}}); err != nil {
			t.Fatal(err)
		}
	}
	app.Drain()
	if _, err := app.Reconfigure(); err != nil {
		t.Fatal(err)
	}

	pre := app.FieldsTraffic()
	for i := 0; i < 2000; i++ {
		k := strconv.Itoa(i % 16)
		_ = app.Inject(locastream.Tuple{Values: []string{"r" + k, "#" + k}})
	}
	app.Drain()
	post := app.FieldsTraffic()
	post.LocalTuples -= pre.LocalTuples
	post.RemoteTuples -= pre.RemoteTuples
	post.RackTuples -= pre.RackTuples

	if post.Locality() != 1.0 {
		t.Fatalf("post-reconfiguration locality = %f", post.Locality())
	}
	if got := post.RackLocality(); got < post.Locality() {
		t.Fatalf("rack locality %f below server locality %f", got, post.Locality())
	}
	if app.RackLocality() <= 0 {
		t.Fatal("cumulative rack locality not reported")
	}
}

func TestAppWithRacksValidation(t *testing.T) {
	topo := geoTopology(t, 2)
	if _, err := locastream.NewApp(topo,
		locastream.WithServers(2),
		locastream.WithRacks([]int{0}), // wrong length
	); err == nil {
		t.Fatal("bad rack assignment accepted")
	}
}

func TestAppReconfigureIfWorthwhile(t *testing.T) {
	topo := geoTopology(t, 3)
	app, err := locastream.NewApp(topo,
		locastream.WithServers(3),
		locastream.WithOptimizer(0, 0, 5),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	for i := 0; i < 3000; i++ {
		k := strconv.Itoa(i % 12)
		_ = app.Inject(locastream.Tuple{Values: []string{"r" + k, "#" + k}})
	}
	app.Drain()

	plan, impact, deployed, err := app.ReconfigureIfWorthwhile(1)
	if err != nil {
		t.Fatal(err)
	}
	if !deployed {
		t.Fatalf("correlated workload not deployed: %+v", impact)
	}
	if plan.ExpectedLocality < 0.99 {
		t.Fatalf("plan locality %f", plan.ExpectedLocality)
	}
	if impact.CandidateLocality <= impact.CurrentLocality {
		t.Fatalf("impact did not predict improvement: %+v", impact)
	}

	// An empty statistics window must be skipped.
	_, impact, deployed, err = app.ReconfigureIfWorthwhile(1)
	if err != nil {
		t.Fatal(err)
	}
	if deployed {
		t.Fatalf("empty window deployed: %+v", impact)
	}
}

func TestAppWithTCPTransport(t *testing.T) {
	topo := geoTopology(t, 3)
	app, err := locastream.NewApp(topo,
		locastream.WithServers(3),
		locastream.WithTCPTransport(),
		locastream.WithOptimizer(0, 0, 7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Stop()

	for i := 0; i < 1500; i++ {
		k := strconv.Itoa(i % 9)
		if err := app.Inject(locastream.Tuple{Values: []string{"r" + k, "#" + k}, Padding: 128}); err != nil {
			t.Fatal(err)
		}
	}
	app.Drain()
	if _, err := app.Reconfigure(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for i := 0; i < 3; i++ {
		_ = app.ProcessorState("hashtags", i, func(p locastream.Processor) {
			total += p.(interface{ TotalCount() uint64 }).TotalCount()
		})
	}
	if total != 1500 {
		t.Fatalf("hashtags total over TCP = %d, want 1500", total)
	}
}
