package locastream_test

import (
	"strconv"
	"testing"

	locastream "github.com/locastream/locastream"
)

func TestSimulationWorstCaseOption(t *testing.T) {
	topo := geoTopology(t, 3)
	sim, err := locastream.NewSimulation(topo,
		locastream.WithServers(3),
		locastream.WithWorstCaseRouting(),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		k := strconv.Itoa(i % 3)
		sim.Inject(locastream.Tuple{Values: []string{k, k}})
	}
	if tr := sim.FieldsTraffic(); tr.LocalTuples != 0 {
		t.Fatalf("worst-case produced %d local tuples", tr.LocalTuples)
	}
}

func TestSimulationSketchDisabledMeansNoOptimization(t *testing.T) {
	topo := geoTopology(t, 2)
	sim, err := locastream.NewSimulation(topo,
		locastream.WithServers(2),
		locastream.WithSketchCapacity(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := strconv.Itoa(i % 4)
		sim.Inject(locastream.Tuple{Values: []string{k, "#" + k}})
	}
	plan, err := sim.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Keys != 0 {
		t.Fatalf("plan saw %d keys with instrumentation disabled", plan.Keys)
	}
}

func TestSimulationExplicitPlacementOption(t *testing.T) {
	topo := geoTopology(t, 2)
	sim, err := locastream.NewSimulation(topo,
		locastream.WithServers(2),
		locastream.WithPlacement(map[string][]int{
			"regions":  {0, 1},
			"hashtags": {1, 0}, // crossed on purpose
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Servers() != 2 {
		t.Fatalf("Servers() = %d", sim.Servers())
	}
	sim.Inject(locastream.Tuple{Values: []string{"a", "b"}})
	if sim.FieldsTraffic().Total() != 1 {
		t.Fatal("tuple did not traverse the fields edge")
	}
}

func TestSimulationNilTopology(t *testing.T) {
	if _, err := locastream.NewSimulation(nil); err == nil {
		t.Fatal("nil topology accepted")
	}
}

func TestSimulationRackLocalityDefaultSingleRack(t *testing.T) {
	topo := geoTopology(t, 2)
	sim, err := locastream.NewSimulation(topo, locastream.WithServers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := strconv.Itoa(i % 4)
		sim.Inject(locastream.Tuple{Values: []string{k, "#" + k}})
	}
	// A single rack means every transfer is rack-local.
	if got := sim.RackLocality(); got != 1.0 {
		t.Fatalf("RackLocality = %f, want 1 with a single rack", got)
	}
}

func TestSimulationChargedSourceHop(t *testing.T) {
	build := func(charged bool) *locastream.Simulation {
		topo := geoTopology(t, 2)
		opts := []locastream.Option{locastream.WithServers(2)}
		if charged {
			opts = append(opts, locastream.WithChargedSourceHop())
		}
		sim, err := locastream.NewSimulation(topo, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	free := build(false)
	charged := build(true)
	tuple := locastream.Tuple{Values: []string{"a", "b"}, Padding: 10000}
	free.Inject(tuple)
	charged.Inject(tuple)
	freeBusy, _ := free.Bottleneck()
	chargedBusy, _ := charged.Bottleneck()
	if chargedBusy <= freeBusy {
		t.Fatalf("charged source hop busy %.0f <= free %.0f", chargedBusy, freeBusy)
	}
}
